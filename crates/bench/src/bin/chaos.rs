//! Chaos benchmark: Table-5-style supervised TESLA episodes replayed
//! under randomized fault plans, one per fault class.
//!
//! For each class (stuck sensor, drift, dropout, noise burst, Modbus
//! write timeout, rejected register, fouled coil, fan failure) the
//! harness draws a fault window at random, runs a supervised episode,
//! and reports the deltas against the fault-free run of the same seed:
//! cooling energy (CE), thermal-safety violation time (TSV, scored on
//! ground truth), cooling interruption (CI), minutes spent in safe
//! mode / hold, and the number of degradation-ladder events.
//!
//! The robustness claims this checks: every episode completes (no
//! panics), all metrics stay finite, sensor lies do not corrupt TSV,
//! and severe faults produce at least one logged degradation event.
//!
//! The fault-free baseline interleaves three metrics-disabled /
//! metrics-enabled episode pairs (after one uncounted warm-up) and
//! reports the *median* per-pair observability overhead (budget: <3%
//! wall-clock) — a single pair is at the mercy of scheduler noise and
//! has produced a nonsensical negative figure. The scenario sweep then
//! runs with metrics enabled and the run writes
//! `bench_results/BENCH_chaos.json` with the per-scenario results, the
//! overhead figures, and a per-phase latency breakdown from the
//! instrumented crates.
//!
//! `--restarts` adds the **restart chaos sweep**: for every fault
//! scenario the controller process is torn down at ≥3 random control
//! steps (fresh re-trained controller + fresh supervisor each time,
//! exactly as a real restart would) and resumed from its checkpoints.
//! Gates: the completed run's set-point sequence is bit-identical to
//! the uninterrupted one, CE/TSV stay within 2 pp, and no *new*
//! ground-truth thermal violations appear inside any post-restart
//! recovery window. Recovery latency lands in the JSON report.
//!
//! Flags: `--minutes N` (default 240), `--train-days D` (default 1.5),
//! `--seed S` (default 7), `--warmup N` (default 60), `--restarts`,
//! `--restarts-per-episode N` (default 3), `--smoke` (shrinks episodes
//! to CI scale and, with `--restarts`, skips the classic sweep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesla_bench::{arg_f64, arg_flag, print_table, train_test_traces};
use tesla_core::{
    resume_supervised_episode, run_checkpointed_episode, run_supervised_episode, CheckpointPolicy,
    CheckpointStore, EpisodeConfig, EvalResult, Supervisor, SupervisorConfig,
};
use tesla_sim::{
    ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow, PlantFault, PlantFaultKind,
    SensorFault, SensorFaultKind, SensorTarget,
};
use tesla_workload::LoadSetting;

struct Scenario {
    name: &'static str,
    /// Severe scenarios must log at least one degradation event.
    severe: bool,
    plan: FaultPlan,
}

/// Draws one fault window of `len` minutes inside the metered episode
/// (offset past the warm-up, which shares the testbed clock).
fn window(rng: &mut StdRng, warmup: usize, minutes: usize, len: f64) -> FaultWindow {
    let span = (minutes as f64 - len - 10.0).max(1.0);
    let start = warmup as f64 + 5.0 + rng.random::<f64>() * span;
    FaultWindow::new(start, start + len)
}

fn scenarios(rng: &mut StdRng, warmup: usize, minutes: usize, n_cold: usize) -> Vec<Scenario> {
    let cold = |rng: &mut StdRng| SensorTarget::DcSensor(rng.random_range(0..n_cold));
    vec![
        Scenario {
            name: "stuck sensor (47C)",
            severe: false,
            plan: FaultPlan {
                sensors: vec![SensorFault {
                    target: cold(rng),
                    kind: SensorFaultKind::StuckAt(47.0),
                    window: window(rng, warmup, minutes, 60.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "sensor drift",
            severe: false,
            plan: FaultPlan {
                sensors: vec![SensorFault {
                    target: cold(rng),
                    kind: SensorFaultKind::Drift {
                        rate_c_per_min: 0.4,
                    },
                    window: window(rng, warmup, minutes, 90.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "dropout (NaN) x2",
            severe: false,
            plan: FaultPlan {
                sensors: vec![
                    SensorFault {
                        target: cold(rng),
                        kind: SensorFaultKind::Dropout,
                        window: window(rng, warmup, minutes, 45.0),
                    },
                    SensorFault {
                        target: cold(rng),
                        kind: SensorFaultKind::Dropout,
                        window: window(rng, warmup, minutes, 45.0),
                    },
                ],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "noise burst",
            severe: false,
            plan: FaultPlan {
                sensors: vec![SensorFault {
                    target: cold(rng),
                    kind: SensorFaultKind::NoiseBurst { std_c: 4.0 },
                    window: window(rng, warmup, minutes, 60.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "write timeout",
            severe: false,
            plan: FaultPlan {
                actuators: vec![ActuatorFault {
                    kind: ActuatorFaultKind::WriteTimeout,
                    window: window(rng, warmup, minutes, 30.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "rejected register",
            severe: false,
            plan: FaultPlan {
                actuators: vec![ActuatorFault {
                    kind: ActuatorFaultKind::RejectedRegister,
                    window: window(rng, warmup, minutes, 30.0),
                }],
                ..FaultPlan::default()
            },
        },
        // Plant faults remove real cooling capacity, so TSV rises for
        // physical reasons no controller can mask; the claim for them is
        // graceful degradation (ladder engages, episode completes), hence
        // `severe`.
        Scenario {
            name: "fouled coil (45%)",
            severe: true,
            plan: FaultPlan {
                plant: vec![PlantFault {
                    kind: PlantFaultKind::FouledCoil {
                        capacity_factor: 0.45,
                    },
                    window: window(rng, warmup, minutes, 90.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "fan failure",
            severe: true,
            plan: FaultPlan {
                plant: vec![PlantFault {
                    kind: PlantFaultKind::FanFailure,
                    window: window(rng, warmup, minutes, 15.0),
                }],
                ..FaultPlan::default()
            },
        },
    ]
}

/// Aggregate outcome of the restart chaos sweep.
struct RestartSweep {
    rows: Vec<Vec<String>>,
    json_rows: Vec<String>,
    failures: usize,
    recovery_seconds: Vec<f64>,
}

/// Minutes after each tear point inside which a *new* ground-truth
/// violation (absent at the same minute of the uninterrupted run) counts
/// against the recovery gate.
const RECOVERY_WINDOW_MIN: usize = 15;

/// Tears the controller down at `n_restarts` random control steps per
/// scenario and resumes from checkpoints, gating the completed run
/// against the uninterrupted one.
fn restart_sweep(
    train: &tesla_forecast::Trace,
    base_cfg: &EpisodeConfig,
    warmup: usize,
    minutes: usize,
    n_cold: usize,
    n_restarts: usize,
    seed: u64,
) -> RestartSweep {
    let policy = CheckpointPolicy {
        every_k: 5,
        on_rung_change: true,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2E57A27);
    let mut sweep = RestartSweep {
        rows: Vec::new(),
        json_rows: Vec::new(),
        failures: 0,
        recovery_seconds: Vec::new(),
    };
    for (idx, sc) in scenarios(&mut rng, warmup, minutes, n_cold)
        .into_iter()
        .enumerate()
    {
        eprintln!("== restart chaos: {} …", sc.name);
        let cfg = EpisodeConfig {
            faults: sc.plan,
            ..base_cfg.clone()
        };

        // Uninterrupted reference with a freshly trained controller (the
        // restart path re-trains from the same sweep, deterministically,
        // so both sides hold identical models at minute 0).
        let mut ctrl = tesla_bench::trained_tesla(train, 1);
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let base = tesla_bench::profile::time_episode(|| {
            run_supervised_episode(&mut ctrl, &mut sup, &cfg).expect("uninterrupted episode")
        });

        // ≥ n_restarts distinct random tear points, late enough that the
        // first checkpoint cadence has fired before the earliest kill.
        let kills: Vec<usize> = {
            let mut set = std::collections::BTreeSet::new();
            let lo = policy.every_k + 1;
            let hi = minutes.saturating_sub(1).max(lo + 1);
            while set.len() < n_restarts {
                set.insert(rng.random_range(lo..hi));
            }
            set.into_iter().collect()
        };

        let dir =
            std::env::temp_dir().join(format!("tesla-chaos-restart-{}-{idx}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 3).expect("checkpoint dir");

        // First life of the process: checkpointing until the first kill.
        let mut ctrl = tesla_bench::trained_tesla(train, 1);
        let mut sup = Supervisor::new(SupervisorConfig::default());
        run_checkpointed_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, Some(kills[0]))
            .expect("first segment");

        // Each subsequent life: fresh controller (re-trained), fresh
        // supervisor, resume from the newest valid checkpoint, die at
        // the next kill point — the last life runs to completion.
        let mut recoveries = Vec::with_capacity(kills.len());
        let mut final_result: Option<EvalResult> = None;
        let mut hold_fallbacks = 0usize;
        for i in 0..kills.len() {
            let abort = kills.get(i + 1).copied();
            let mut ctrl = tesla_bench::trained_tesla(train, 1);
            let mut sup = Supervisor::new(SupervisorConfig::default());
            let (r, report) =
                resume_supervised_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, abort)
                    .expect("resume");
            recoveries.push(report.recovery_seconds);
            if report.fell_back_to_hold {
                hold_fallbacks += 1;
            }
            if abort.is_none() {
                final_result = Some(r);
            }
        }
        let r = final_result.expect("final resume runs to completion");
        let _ = std::fs::remove_dir_all(&dir);

        let complete = r.setpoints.len() == minutes;
        let bit_identical = complete && r.setpoints == base.setpoints;
        let ce_delta_pct = 100.0 * (r.cooling_energy_kwh / base.cooling_energy_kwh - 1.0);
        let tsv_delta_pp = r.tsv_percent - base.tsv_percent;
        // New ground-truth violations inside any post-restart recovery
        // window (violations the uninterrupted run also has at the same
        // minute are the fault's doing, not the restart's).
        let d = cfg.d_allowed.value();
        let mut recovery_violations = 0usize;
        for &k in &kills {
            for m in k..(k + RECOVERY_WINDOW_MIN).min(minutes) {
                let resumed_hot = r.cold_aisle_max.get(m).is_some_and(|&v| v > d);
                let base_hot = base.cold_aisle_max.get(m).is_some_and(|&v| v > d);
                if resumed_hot && !base_hot {
                    recovery_violations += 1;
                }
            }
        }
        let finite = r.cooling_energy_kwh.is_finite()
            && r.tsv_percent.is_finite()
            && r.ci_percent.is_finite();
        let ok = finite
            && complete
            && hold_fallbacks == 0
            && ce_delta_pct.abs() <= 2.0
            && tsv_delta_pp.abs() <= 2.0
            && recovery_violations == 0;
        if !ok {
            sweep.failures += 1;
            eprintln!(
                "   FAIL: complete={complete} bit_identical={bit_identical} \
                 dCE={ce_delta_pct:+.3}% dTSV={tsv_delta_pp:+.3}pp \
                 recovery_violations={recovery_violations} hold_fallbacks={hold_fallbacks}"
            );
        }
        let mean_recovery = recoveries.iter().sum::<f64>() / recoveries.len().max(1) as f64;
        sweep.recovery_seconds.extend(recoveries.iter().copied());

        sweep.rows.push(vec![
            sc.name.to_string(),
            kills
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(","),
            format!("{ce_delta_pct:+.2}%"),
            format!("{tsv_delta_pp:+.2}"),
            format!("{recovery_violations}"),
            format!("{:.0}ms", mean_recovery * 1e3),
            if bit_identical {
                "yes".into()
            } else {
                "NO".into()
            },
            if ok { "ok".into() } else { "FAIL".into() },
        ]);
        sweep.json_rows.push(format!(
            "{{\"fault\":\"{}\",\"kill_minutes\":[{}],\"restarts\":{},\
             \"bit_identical\":{bit_identical},\"ce_delta_percent\":{ce_delta_pct:.4},\
             \"tsv_delta_pp\":{tsv_delta_pp:.4},\"recovery_violations\":{recovery_violations},\
             \"recovery_seconds_mean\":{mean_recovery:.6},\"ok\":{ok}}}",
            sc.name,
            kills
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(","),
            kills.len(),
        ));
    }
    sweep
}

fn main() {
    let restarts_mode = arg_flag("restarts");
    let smoke = arg_flag("smoke");
    let (def_minutes, def_warmup, def_train_days) = if smoke {
        (60.0, 20.0, 0.3)
    } else {
        (240.0, 60.0, 1.5)
    };
    let minutes = arg_f64("minutes", def_minutes) as usize;
    let warmup = arg_f64("warmup", def_warmup) as usize;
    let train_days = arg_f64("train-days", def_train_days);
    let seed = arg_f64("seed", 7.0) as u64;
    let n_restarts = (arg_f64("restarts-per-episode", 3.0) as usize).max(3);
    // Smoke + restarts is the CI job: only the restart sweep, CI-scale.
    let run_classic = !(restarts_mode && smoke);

    eprintln!("generating {train_days}-day training sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    eprintln!("training TESLA …");
    let mut tesla = tesla_bench::trained_tesla(&train, 1);

    let base_cfg = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes,
        warmup_minutes: warmup,
        seed,
        ..EpisodeConfig::default()
    };
    let n_cold = base_cfg.sim.n_cold_aisle_sensors;

    let mut fields: Vec<(&str, String)> = vec![
        ("minutes", format!("{minutes}")),
        ("seed", format!("{seed}")),
    ];
    let mut failures = 0usize;

    if run_classic {
        let run = |tesla: &mut tesla_core::TeslaController,
                   plan: FaultPlan|
         -> (EvalResult, Supervisor) {
            let mut sup = Supervisor::new(SupervisorConfig::default());
            let cfg = EpisodeConfig {
                faults: plan,
                ..base_cfg.clone()
            };
            let r = tesla_bench::profile::time_episode(|| {
                run_supervised_episode(tesla, &mut sup, &cfg).expect("episode")
            });
            (r, sup)
        };

        // Observability overhead: a single disabled/enabled pair is at the
        // mercy of scheduler noise (one seed measured a nonsensical -4%).
        // Run one uncounted warm-up episode, then interleave disabled and
        // enabled episodes so slow drift hits both sides, and report the
        // median per-pair overhead so one outlier run cannot flip the sign.
        const OVERHEAD_PAIRS: usize = 3;
        eprintln!("== warm-up episode, uncounted ({minutes} min, medium load, seed {seed}) …");
        tesla_obs::set_enabled(false);
        let _ = run(&mut tesla, FaultPlan::none());

        let mut disabled_runs = Vec::with_capacity(OVERHEAD_PAIRS);
        let mut enabled_runs = Vec::with_capacity(OVERHEAD_PAIRS);
        let mut pair_overheads = Vec::with_capacity(OVERHEAD_PAIRS);
        let mut last_base = None;
        let timed = |tesla: &mut tesla_core::TeslaController, enabled: bool| {
            tesla_obs::set_enabled(enabled);
            let t = std::time::Instant::now();
            let (r, _) = run(tesla, FaultPlan::none());
            (t.elapsed().as_secs_f64(), r)
        };
        for pair in 1..=OVERHEAD_PAIRS {
            // Alternate which side runs first so any episode-to-episode
            // drift (cache state, controller history) hits both sides.
            let disabled_first = pair % 2 == 1;
            eprintln!(
                "== fault-free baseline pair {pair}/{OVERHEAD_PAIRS} \
                 ({} first) …",
                if disabled_first {
                    "disabled"
                } else {
                    "enabled"
                }
            );
            let (disabled, enabled, b) = if disabled_first {
                let (d, _) = timed(&mut tesla, false);
                let (e, b) = timed(&mut tesla, true);
                (d, e, b)
            } else {
                let (e, b) = timed(&mut tesla, true);
                let (d, _) = timed(&mut tesla, false);
                (d, e, b)
            };
            eprintln!(
                "   pair {pair}: enabled {enabled:.2}s vs disabled {disabled:.2}s \
                 ({:+.2}%)",
                100.0 * (enabled / disabled - 1.0)
            );
            disabled_runs.push(disabled);
            enabled_runs.push(enabled);
            pair_overheads.push(100.0 * (enabled / disabled - 1.0));
            last_base = Some(b);
        }
        let median = |xs: &[f64]| {
            let mut s = xs.to_vec();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        let base = last_base.expect("at least one baseline pair");
        let disabled_secs = median(&disabled_runs);
        let enabled_secs = median(&enabled_runs);
        let overhead_pct = median(&pair_overheads);
        eprintln!(
            "   CE {:.1} kWh  TSV {:.2}%  CI {:.2}%  metrics overhead {overhead_pct:+.2}% median \
             (median enabled {enabled_secs:.2}s vs median disabled {disabled_secs:.2}s)",
            base.cooling_energy_kwh, base.tsv_percent, base.ci_percent
        );

        // The scenario sweep always runs instrumented, whatever side of the
        // overhead pair ran last.
        tesla_obs::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0);
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut json_rows: Vec<String> = Vec::new();
        for sc in scenarios(&mut rng, warmup, minutes, n_cold) {
            eprintln!("== {} …", sc.name);
            let (r, sup) = run(&mut tesla, sc.plan);

            let finite = r.cooling_energy_kwh.is_finite()
                && r.tsv_percent.is_finite()
                && r.ci_percent.is_finite()
                && r.cold_aisle_max.iter().all(|v| v.is_finite());
            let tsv_delta = r.tsv_percent - base.tsv_percent;
            // Severe (plant) faults legitimately raise TSV — the ±2 pp bound
            // applies to the sensor/actuator classes, where robust control
            // can and must absorb the fault.
            let tsv_ok = sc.severe || tsv_delta.abs() <= 2.0;
            let events_ok = !sc.severe || !sup.events().is_empty();
            let ok = finite && tsv_ok && events_ok && r.setpoints.len() == minutes;
            if !ok {
                failures += 1;
                // Diagnostic dump for the failing scenario: the ladder's event
                // log plus a coarse set-point / ground-truth trajectory.
                for ev in sup.events() {
                    eprintln!(
                        "   event m{:>3}  {:?} -> {:?}  ({:?})",
                        ev.minute, ev.from, ev.to, ev.reason
                    );
                }
                for (m, (sp, max)) in r.setpoints.iter().zip(&r.cold_aisle_max).enumerate() {
                    if m % 10 == 0 {
                        eprintln!("   m{m:>3}  sp {sp:5.1}  cold max {max:5.2}");
                    }
                }
            }

            rows.push(vec![
                sc.name.to_string(),
                format!("{:.1}", r.cooling_energy_kwh),
                format!(
                    "{:+.1}%",
                    100.0 * (r.cooling_energy_kwh / base.cooling_energy_kwh - 1.0)
                ),
                format!("{:.2}", r.tsv_percent),
                format!("{tsv_delta:+.2}"),
                format!("{:.2}", r.ci_percent),
                format!("{}", r.safe_mode_minutes),
                format!("{}", sup.hold_minutes()),
                format!("{}", sup.events().len()),
                if ok { "ok".into() } else { "FAIL".into() },
            ]);
            json_rows.push(format!(
                "{{\"fault\":\"{}\",\"ce_kwh\":{:.3},\"tsv_percent\":{:.4},\
                 \"ci_percent\":{:.4},\"safe_mode_minutes\":{},\"hold_minutes\":{},\
                 \"ladder_events\":{},\"ok\":{}}}",
                sc.name,
                r.cooling_energy_kwh,
                r.tsv_percent,
                r.ci_percent,
                r.safe_mode_minutes,
                sup.hold_minutes(),
                sup.events().len(),
                ok
            ));
        }

        print_table(
            &format!("Chaos: supervised TESLA under fault injection ({minutes}-min episodes)"),
            &[
                "fault", "CE kWh", "dCE", "TSV %", "dTSV pp", "CI %", "safe min", "hold min",
                "events", "verdict",
            ],
            &rows,
        );
        println!(
            "baseline: CE {:.1} kWh  TSV {:.2}%  CI {:.2}%",
            base.cooling_energy_kwh, base.tsv_percent, base.ci_percent
        );
        println!(
            "metrics overhead: {overhead_pct:+.2}% wall-clock, median of {OVERHEAD_PAIRS} \
             interleaved pairs (budget <3%; median enabled {enabled_secs:.2}s, \
             median disabled {disabled_secs:.2}s)"
        );
        if overhead_pct >= 3.0 {
            eprintln!("warning: observability overhead exceeds the 3% budget");
        }
        fields.extend([
            ("baseline_ce_kwh", format!("{:.3}", base.cooling_energy_kwh)),
            ("baseline_tsv_percent", format!("{:.4}", base.tsv_percent)),
            ("baseline_ci_percent", format!("{:.4}", base.ci_percent)),
            ("metrics_disabled_seconds", format!("{disabled_secs:.4}")),
            ("metrics_enabled_seconds", format!("{enabled_secs:.4}")),
            ("metrics_overhead_percent", format!("{overhead_pct:.3}")),
            (
                "metrics_overhead_pairs_percent",
                format!(
                    "[{}]",
                    pair_overheads
                        .iter()
                        .map(|v| format!("{v:.3}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
            ("scenarios", format!("[{}]", json_rows.join(","))),
        ]);
    }

    if restarts_mode {
        tesla_obs::set_enabled(true);
        let sweep = restart_sweep(&train, &base_cfg, warmup, minutes, n_cold, n_restarts, seed);
        print_table(
            &format!(
                "Restart chaos: {n_restarts} teardowns per {minutes}-min episode, \
                 checkpoint resume"
            ),
            &[
                "fault",
                "kill minutes",
                "dCE",
                "dTSV pp",
                "new viol",
                "recovery",
                "bit-identical",
                "verdict",
            ],
            &sweep.rows,
        );
        let mean =
            sweep.recovery_seconds.iter().sum::<f64>() / sweep.recovery_seconds.len().max(1) as f64;
        let max = sweep
            .recovery_seconds
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        println!(
            "restart recovery: mean {:.0} ms, max {:.0} ms over {} restarts",
            mean * 1e3,
            max * 1e3,
            sweep.recovery_seconds.len()
        );
        fields.extend([
            ("restarts_per_episode", format!("{n_restarts}")),
            (
                "restart_scenarios",
                format!("[{}]", sweep.json_rows.join(",")),
            ),
            ("restart_recovery_seconds_mean", format!("{mean:.6}")),
            ("restart_recovery_seconds_max", format!("{max:.6}")),
            ("restart_failures", format!("{}", sweep.failures)),
        ]);
        failures += sweep.failures;
    }

    let path = tesla_bench::profile::write_bench_json("chaos", &fields);
    println!("report written to {}", path.display());
    if failures > 0 {
        eprintln!("{failures} scenario(s) violated the robustness acceptance bounds");
        std::process::exit(1);
    }
    println!("all scenarios completed with finite metrics within bounds");
}
