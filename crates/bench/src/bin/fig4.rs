//! Figure 4: the energy cost of set-point variation.
//!
//! The paper dips the set-point from ~28.5 °C to ~27.5 °C for two minutes
//! and back; the lower value is never reached, yet ACU power rises ~30%
//! (2.0 → 2.6 kW) during the transient. This motivates both the shared
//! set-point over the horizon (Eq. 5) and the smoothing buffer (§3.4).

use tesla_bench::{export_csv, print_table};
use tesla_sim::{SimConfig, Testbed};
use tesla_units::Celsius;

fn main() {
    let sim = SimConfig::default();
    let mut tb = Testbed::new(sim.clone(), 4).expect("testbed");
    let utils = vec![0.30; sim.n_servers];

    // Settle at a set-point the plant can hold.
    tb.write_setpoint(Celsius::new(28.5));
    tb.warm_up(&utils, 600).expect("warm-up");

    let mut minutes = Vec::new();
    let mut setpoint = Vec::new();
    let mut inlet = Vec::new();
    let mut power = Vec::new();
    // Minute 0 at 28.5 °C, dip to 27.5 °C for minutes 1-2, back to 28.6 °C.
    for m in 0..5 {
        if m == 1 {
            tb.write_setpoint(Celsius::new(27.5));
        } else if m == 3 {
            tb.write_setpoint(Celsius::new(28.6));
        }
        let obs = tb.step_sample(&utils).expect("step");
        minutes.push(m as f64);
        setpoint.push(obs.setpoint);
        inlet.push(obs.acu_inlet_temps.iter().sum::<f64>() / obs.acu_inlet_temps.len() as f64);
        power.push(obs.acu_power_kw);
    }
    let settled = power[0];

    let peak = power.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_inlet = inlet.iter().cloned().fold(f64::INFINITY, f64::min);

    print_table(
        "Figure 4: transient power cost of a 1 C set-point dip",
        &["metric", "value"],
        &[
            vec!["settled power (kW)".into(), format!("{settled:.3}")],
            vec!["peak power during dip (kW)".into(), format!("{peak:.3}")],
            vec![
                "power increase (%)".into(),
                format!("{:.1}", 100.0 * (peak / settled - 1.0)),
            ],
            vec!["lowest inlet reached (C)".into(), format!("{min_inlet:.2}")],
            vec!["dip target (C)".into(), "27.5".into()],
        ],
    );
    println!(
        "\npaper: ~30% power increase (2.0 -> 2.6 kW) even though 27.5 C is never achieved;\n\
         reproduction target: a double-digit-percent transient power rise with the\n\
         inlet staying above the dipped set-point."
    );
    let path = export_csv(
        "fig4_setpoint_dip",
        &["minute", "setpoint_c", "inlet_c", "acu_power_kw"],
        &[&minutes, &setpoint, &inlet, &power],
    );
    println!("series written to {}", path.display());
}
