//! Figure 2: ACU power time series with the set-point fixed at 27 °C.
//!
//! The paper's point: even under a constant set-point, server-power
//! fluctuation makes the PID modulate the compressor, so instantaneous
//! ACU power varies by hundreds of watts — which is why TESLA models
//! horizon *energy* rather than instantaneous power (§2.2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_bench::{export_csv, print_table};
use tesla_sim::{SimConfig, Testbed};
use tesla_units::Celsius;
use tesla_workload::{DiurnalProfile, LoadSetting, Orchestrator};

fn main() {
    let minutes = tesla_bench::arg_f64("minutes", 200.0) as usize;
    let sim = SimConfig::default();
    let mut tb = Testbed::new(sim.clone(), 42).expect("testbed");
    let mut orch = Orchestrator::new(sim.n_servers);
    let mut profile = DiurnalProfile::new(LoadSetting::Medium, minutes as f64 * 60.0);
    let mut rng = StdRng::seed_from_u64(7);

    tb.write_setpoint(Celsius::new(27.0));
    // Settle at mid-profile load so the compressor is actively modulating.
    let mid = minutes as f64 * 30.0;
    let warm_target = profile.sample(mid, &mut rng);
    let utils = orch.tick(60.0, warm_target, &mut rng);
    tb.warm_up(&utils, 180).expect("warm-up");

    let mut t_min = Vec::with_capacity(minutes);
    let mut power = Vec::with_capacity(minutes);
    for m in 0..minutes {
        let target = profile.sample(mid + m as f64 * 60.0, &mut rng);
        let utils = orch.tick(60.0, target, &mut rng);
        let obs = tb.step_sample(&utils).expect("step");
        t_min.push(m as f64);
        power.push(obs.acu_power_kw);
    }

    let mean = tesla_linalg::stats::mean(&power);
    let min = power.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = power.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let std = tesla_linalg::stats::std_dev(&power);

    print_table(
        "Figure 2: ACU power with set-point fixed at 27 C (medium load)",
        &["metric", "value"],
        &[
            vec!["samples (min)".into(), format!("{minutes}")],
            vec!["mean power (kW)".into(), format!("{mean:.3}")],
            vec!["min power (kW)".into(), format!("{min:.3}")],
            vec!["max power (kW)".into(), format!("{max:.3}")],
            vec!["std (kW)".into(), format!("{std:.3}")],
            vec!["band (max-min, kW)".into(), format!("{:.3}", max - min)],
        ],
    );
    println!(
        "\npaper: power varies between ~2 and ~3 kW at a constant 27 C set-point;\n\
         reproduction target: a clearly nonzero band under constant set-point."
    );
    let path = export_csv(
        "fig2_acu_power",
        &["minute", "acu_power_kw"],
        &[&t_min, &power],
    );
    println!("series written to {}", path.display());
}
