//! Figure 8: how TESLA computes its optimal set-point.
//!
//! (a) the average server power over a medium-load episode, with two
//! marked time instants; (b) the Gaussian-process posterior mean of the
//! objective and constraint functions at those instants, from which the
//! optimizer picks the feasible maximizer.

use tesla_bench::{arg_f64, export_csv, print_table, train_test_traces, trained_tesla};
use tesla_core::dataset::push_observation;
use tesla_core::{Controller, EpisodeConfig};
use tesla_forecast::Trace;
use tesla_sim::Testbed;
use tesla_units::Celsius;
use tesla_workload::{DiurnalProfile, LoadSetting, Orchestrator};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    let minutes = arg_f64("minutes", 720.0) as usize;
    eprintln!("training TESLA on a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    let mut tesla = trained_tesla(&train, 1);

    // Run the medium-load episode manually so the BO posterior can be
    // captured at the two paper-marked instants (3.9 h and 7.2 h scaled
    // to the episode length).
    let cfg = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes,
        warmup_minutes: 60,
        seed: 88,
        ..EpisodeConfig::default()
    };
    let mark_a = (minutes as f64 * 3.9 / 12.0) as usize;
    let mark_b = (minutes as f64 * 7.2 / 12.0) as usize;

    let mut tb = Testbed::new(cfg.sim.clone(), cfg.seed).expect("testbed");
    let mut orch = Orchestrator::new(cfg.sim.n_servers);
    let mut profile = DiurnalProfile::new(cfg.setting, minutes as f64 * 60.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xEE);
    let mut trace = Trace::with_sensors(cfg.sim.n_acu_sensors, cfg.sim.n_dc_sensors);
    tb.write_setpoint(Celsius::new(23.0));
    for _ in 0..cfg.warmup_minutes {
        let t = profile.sample(0.0, &mut rng);
        let utils = orch.tick(60.0, t, &mut rng);
        let obs = tb.step_sample(&utils).expect("step");
        push_observation(&mut trace, &obs);
    }

    let mut t_hours = Vec::new();
    let mut avg_power = Vec::new();
    // (label, utilisations, temps, duties, setpoint) per marked minute.
    type Snapshot = (String, Vec<f64>, Vec<f64>, Vec<f64>, f64);
    let mut snapshots: Vec<Snapshot> = Vec::new();

    for m in 0..minutes {
        let sp = tesla.decide(&trace);
        tb.write_setpoint(Celsius::new(sp));
        if (m == mark_a || m == mark_b) && tesla.last_outcome().is_some() {
            let out = tesla.last_outcome().unwrap();
            snapshots.push((
                format!("{:.1}h", m as f64 / 60.0),
                out.grid.clone(),
                out.objective_mean.clone(),
                out.constraint_mean.clone(),
                out.setpoint,
            ));
        }
        let t = profile.sample(m as f64 * 60.0, &mut rng);
        let utils = orch.tick(60.0, t, &mut rng);
        let obs = tb.step_sample(&utils).expect("step");
        t_hours.push(m as f64 / 60.0);
        avg_power.push(obs.avg_server_power_kw);
        push_observation(&mut trace, &obs);
    }

    let p_a = avg_power.get(mark_a).copied().unwrap_or(0.0);
    let p_b = avg_power.get(mark_b).copied().unwrap_or(0.0);
    print_table(
        "Figure 8a: average server power (medium load)",
        &["instant", "per-machine power (kW)", "paper marks (kW)"],
        &[
            vec![
                format!("{:.1} h", mark_a as f64 / 60.0),
                format!("{p_a:.3}"),
                "0.365".into(),
            ],
            vec![
                format!("{:.1} h", mark_b as f64 / 60.0),
                format!("{p_b:.3}"),
                "0.233".into(),
            ],
        ],
    );
    let path = export_csv(
        "fig8a_server_power",
        &["hour", "avg_server_power_kw"],
        &[&t_hours, &avg_power],
    );
    println!("series written to {}", path.display());

    for (label, grid, obj, con, chosen) in &snapshots {
        println!("\n== Figure 8b: GP posterior at {label} (chosen set-point {chosen:.1} C) ==");
        println!("{:>6}  {:>10}  {:>10}", "s (C)", "objective", "constraint");
        for i in (0..grid.len()).step_by(6) {
            println!("{:>6.1}  {:>10.3}  {:>10.3}", grid[i], obj[i], con[i]);
        }
        let name = format!("fig8b_posterior_{}", label.replace('.', "_"));
        let path = export_csv(
            &name,
            &["setpoint_c", "objective_mean", "constraint_mean"],
            &[grid, obj, con],
        );
        println!("series written to {}", path.display());
    }
    println!(
        "\npaper: negative-constraint region defines feasible set-points; the optimizer\n\
         picks the objective peak inside it, and the peak moves with server load."
    );
}
