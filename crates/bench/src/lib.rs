#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Experiment harness shared by the table/figure binaries.
//!
//! Every table and figure of the paper's evaluation (§5–6) has a binary
//! in `src/bin/` that regenerates it:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig2` | ACU power variance at a fixed 27 °C set-point |
//! | `fig3` | cooling-interruption rise / recovery rates |
//! | `fig4` | transient power cost of a set-point dip |
//! | `table3` | DC-temperature MAPE: TESLA vs Lazic (recursive OLS) vs MLP |
//! | `table4` | cooling-energy MAPE: TESLA vs MLP vs XGBoost-like GBT vs RF |
//! | `table5` | end-to-end CE / CE-saving / TSV / CI for all controllers × loads |
//! | `fig8` | server-power trace + BO objective/constraint snapshots |
//! | `fig9`–`fig12` | per-controller set-point / inlet / power / cold-aisle traces |
//! | `ablation_*` | κ, smoothing-buffer, and horizon sensitivity studies |
//!
//! The absolute numbers come from the simulator substrate, not the
//! authors' testbed; the *shape* (who wins, by roughly what factor, where
//! the crossovers sit) is the reproduction target — see EXPERIMENTS.md.
//!
//! This library holds the pieces the binaries share: dataset generation,
//! the MAPE evaluation protocols, the Wang-et-al-style recursive MLP
//! baseline, table rendering, and CSV export.
//!
//! # Example: profiling a timed phase
//!
//! ```
//! tesla_obs::set_enabled(true);
//! let value = tesla_bench::profile::time_episode(|| 2 + 2);
//! assert_eq!(value, 4);
//! // The wall-clock histogram now feeds the BENCH_*.json breakdown.
//! let json = tesla_bench::profile::latency_breakdown_json();
//! assert!(json.contains("bench_episode_wall_seconds"));
//! ```

pub mod plot;
pub mod profile;

use std::io::Write as _;
use std::path::PathBuf;
use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_forecast::{DcTimeSeriesModel, ModelWindow, RecursiveAr, Trace};
use tesla_ml::{Mlp, MlpConfig};
use tesla_sim::SimConfig;
use tesla_units::Celsius;

/// Generates the §5.1 train/test traces (sweep data under random load
/// settings). `train_days`/`test_days` shrink the paper's 30 + 14 days to
/// whatever the caller's budget allows; the protocol is identical.
///
/// Traces are cached under `bench_results/` (keyed by days and seed) so
/// repeated benchmark invocations skip the simulation.
pub fn train_test_traces(train_days: f64, test_days: f64, seed: u64) -> (Trace, Trace) {
    let train = cached_sweep(train_days, seed);
    let test = cached_sweep(test_days, seed ^ 0x5EED_7E57);
    (train, test)
}

fn cached_sweep(days: f64, seed: u64) -> Trace {
    let dir = PathBuf::from("bench_results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!(
        "sweep_{}m_{seed:x}.csv",
        (days * 1440.0).round() as u64
    ));
    if path.exists() {
        if let Ok(trace) = tesla_forecast::io::load_csv(&path) {
            let expected = (days * 1440.0).round() as usize;
            if trace.len() == expected {
                return trace;
            }
        }
    }
    let trace = generate_sweep_trace(&DatasetConfig {
        days,
        seed,
        ..DatasetConfig::default()
    })
    .expect("sweep generation");
    let _ = tesla_forecast::io::save_csv(&trace, &path);
    trace
}

/// True when the bare flag `--name` appears on the command line.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Reads an `ENV`-style override from the command line (`--days 3`), with
/// a default. Keeps the binaries dependency-free.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == format!("--{name}") {
            if let Ok(v) = args[i + 1].parse() {
                return v;
            }
        }
    }
    default
}

/// Evaluation points on a test trace: window indices with full lag + full
/// horizon coverage, at `stride`.
fn eval_points(trace: &Trace, l: usize, stride: usize) -> Vec<usize> {
    (l - 1..trace.len().saturating_sub(l))
        .step_by(stride.max(1))
        .collect()
}

/// Temperature-MAPE protocol (Table 3): predict every rack sensor over
/// the `L`-step horizon using the *executed* future set-points, then
/// MAPE against the realized temperatures.
pub fn temperature_mape_tesla(model: &DcTimeSeriesModel, test: &Trace, stride: usize) -> f64 {
    let l = model.config().horizon;
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    for t in eval_points(test, l, stride) {
        let window = test.window_at(t, l).expect("window");
        let sps =
            Celsius::from_raw_slice(&(1..=l).map(|s| test.setpoint[t + s]).collect::<Vec<_>>());
        let Ok(p) = model.predict_with_setpoints(&window, &sps) else {
            continue;
        };
        for k in 0..test.n_dc_sensors() {
            for step in 0..l {
                truth.push(test.dc_temps[k][t + 1 + step]);
                pred.push(p.dc[k][step]);
            }
        }
    }
    tesla_linalg::stats::mape(&truth, &pred)
}

/// Table 3's Lazic baseline: recursive AR rollout MAPE.
pub fn temperature_mape_recursive(
    model: &RecursiveAr,
    test: &Trace,
    l: usize,
    stride: usize,
) -> f64 {
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    for t in eval_points(test, l, stride) {
        let window = test.window_at(t, l).expect("window");
        let sps: Vec<f64> = (1..=l).map(|s| test.setpoint[t + s]).collect();
        let Ok(roll) = model.predict_rollout(&window, &sps) else {
            continue;
        };
        for (k, row) in roll.iter().enumerate().take(test.n_dc_sensors()) {
            for (step, &p) in row.iter().enumerate().take(l) {
                truth.push(test.dc_temps[k][t + 1 + step]);
                pred.push(p);
            }
        }
    }
    tesla_linalg::stats::mape(&truth, &pred)
}

/// The Wang et al. \[42\]-style MLP baseline for Table 3: a one-step
/// multi-output MLP over the collective signal frame, rolled out
/// recursively like the original model-based DRL world models.
pub struct RecursiveMlp {
    mlp: Mlp,
    n_dc: usize,
    n_acu: usize,
}

impl RecursiveMlp {
    /// Trains the one-step model: `[frame_t, frame_{t-1}, s_{t+1}] →
    /// frame_{t+1}` where a frame is all rack temps + inlet temps + power.
    pub fn fit(trace: &Trace, config: MlpConfig) -> Self {
        let n_dc = trace.n_dc_sensors();
        let n_acu = trace.n_acu_sensors();
        let m = n_dc + n_acu + 1;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for t in 1..trace.len() - 1 {
            let mut row = Vec::with_capacity(2 * m + 1);
            for back in 0..2 {
                Self::write_frame(&mut row, trace, t - back);
            }
            row.push(trace.setpoint[t + 1]);
            x.push(row);
            let mut target = Vec::with_capacity(m);
            Self::write_frame(&mut target, trace, t + 1);
            y.push(target);
        }
        let mlp = Mlp::fit_multi(&x, &y, config).expect("MLP training");
        RecursiveMlp { mlp, n_dc, n_acu }
    }

    fn write_frame(dst: &mut Vec<f64>, trace: &Trace, t: usize) {
        for k in 0..trace.n_dc_sensors() {
            dst.push(trace.dc_temps[k][t]);
        }
        for i in 0..trace.n_acu_sensors() {
            dst.push(trace.acu_inlet[i][t]);
        }
        dst.push(trace.avg_power[t]);
    }

    /// Rolls the model out and returns predicted rack temps `[N_d][steps]`.
    pub fn predict_rollout(&self, window: &ModelWindow, setpoints: &[f64]) -> Vec<Vec<f64>> {
        let m = self.n_dc + self.n_acu + 1;
        let hist = window.power.len();
        let mut frames: Vec<Vec<f64>> = (0..2)
            .map(|back| {
                let idx = hist - 1 - back;
                let mut f = Vec::with_capacity(m);
                for k in 0..self.n_dc {
                    f.push(window.dc[k][idx]);
                }
                for i in 0..self.n_acu {
                    f.push(window.inlet[i][idx]);
                }
                f.push(window.power[idx]);
                f
            })
            .collect();
        let mut out = vec![Vec::with_capacity(setpoints.len()); self.n_dc];
        for &sp in setpoints {
            let mut input = Vec::with_capacity(2 * m + 1);
            input.extend_from_slice(&frames[0]);
            input.extend_from_slice(&frames[1]);
            input.push(sp);
            let next = self.mlp.predict_multi(&input);
            for (k, series) in out.iter_mut().enumerate() {
                series.push(next[k]);
            }
            frames.rotate_right(1);
            frames[0] = next;
        }
        out
    }
}

/// Table 3's MLP column.
pub fn temperature_mape_mlp(model: &RecursiveMlp, test: &Trace, l: usize, stride: usize) -> f64 {
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    for t in eval_points(test, l, stride) {
        let window = test.window_at(t, l).expect("window");
        let sps: Vec<f64> = (1..=l).map(|s| test.setpoint[t + s]).collect();
        let roll = model.predict_rollout(&window, &sps);
        for (k, row) in roll.iter().enumerate().take(test.n_dc_sensors()) {
            for (step, &p) in row.iter().enumerate().take(l) {
                truth.push(test.dc_temps[k][t + 1 + step]);
                pred.push(p);
            }
        }
    }
    tesla_linalg::stats::mape(&truth, &pred)
}

/// Builds the Table 4 dataset: features = future set-points + future
/// inlet temps over the horizon (Eq. 4's inputs, true values — the
/// protocol isolates the energy model itself); target = energy over the
/// horizon, kWh.
pub fn energy_dataset(trace: &Trace, l: usize, stride: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n_a = trace.n_acu_sensors();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for t in eval_points(trace, l, stride) {
        let mut row = Vec::with_capacity(l + n_a * l);
        for i in 1..=l {
            row.push(trace.setpoint[t + i]);
        }
        for na in 0..n_a {
            for i in 1..=l {
                row.push(trace.acu_inlet[na][t + i]);
            }
        }
        x.push(row);
        y.push(trace.acu_energy[t + 1..=t + l].iter().sum());
    }
    (x, y)
}

/// Renders an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    println!("\n== {title} ==");
    let line: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i] + 2))
        .collect();
    println!("{line}");
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i] + 2))
            .collect();
        println!("{line}");
    }
}

/// Flattens a display name into a shell-safe CSV stem: ASCII
/// alphanumerics are lowercased, everything else (spaces, dashes, °)
/// becomes `_`. `"Fig10_fixed-23C"` → `"fig10_fixed_23c"`, so the
/// artifacts under `bench_results/` never need quoting in the runbooks.
pub fn csv_slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes aligned series as CSV under `bench_results/` for plotting.
pub fn export_csv(name: &str, headers: &[&str], columns: &[&[f64]]) -> PathBuf {
    let dir = PathBuf::from("bench_results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).expect("csv header");
    let rows = columns.iter().map(|c| c.len()).max().unwrap_or(0);
    for r in 0..rows {
        let line: Vec<String> = columns
            .iter()
            .map(|c| c.get(r).map(|v| format!("{v}")).unwrap_or_default())
            .collect();
        writeln!(f, "{}", line.join(",")).expect("csv row");
    }
    path
}

/// Default simulator config helper for the binaries.
pub fn sim_config() -> SimConfig {
    SimConfig::default()
}

/// Trains a TESLA controller with Table 2 defaults on a sweep trace.
pub fn trained_tesla(train: &Trace, seed: u64) -> tesla_core::TeslaController {
    let cfg = tesla_core::TeslaConfig {
        seed,
        ..tesla_core::TeslaConfig::default()
    };
    tesla_core::TeslaController::new(train, cfg).expect("TESLA training")
}

/// Trains the Lazic et al. baseline controller.
pub fn trained_lazic(train: &Trace) -> tesla_core::LazicController {
    tesla_core::LazicController::new(train, tesla_core::lazic::LazicConfig::default())
        .expect("Lazic training")
}

/// Trains the TSRL baseline controller.
pub fn trained_tsrl(train: &Trace) -> tesla_core::TsrlController {
    tesla_core::TsrlController::new(train, tesla_core::TsrlConfig::default())
        .expect("TSRL training")
}

/// Shared implementation of Figs. 9–12: run one controller through a
/// medium-load episode and report/export its set-point, inlet, ACU power
/// and max-cold-aisle traces.
pub fn run_trace_figure(
    figure: &str,
    controller: &mut dyn tesla_core::Controller,
    paper_note: &str,
) {
    let train_days = arg_f64("train-days", 3.0);
    let _ = train_days; // callers train before calling; flag listed for symmetry
    let minutes = arg_f64("minutes", 720.0) as usize;
    let result = run_standard_episode(controller, tesla_workload::LoadSetting::Medium, minutes, 88);
    let hours: Vec<f64> = (0..minutes).map(|m| m as f64 / 60.0).collect();
    let limit = vec![22.0; minutes];

    let above: usize = result.cold_aisle_max.iter().filter(|&&c| c > 22.0).count();
    print_table(
        &format!(
            "{figure}: {} under medium load ({minutes} min)",
            result.controller
        ),
        &["metric", "value"],
        &[
            vec![
                "cooling energy (kWh)".into(),
                format!("{:.2}", result.cooling_energy_kwh),
            ],
            vec![
                "mean set-point (C)".into(),
                format!("{:.2}", tesla_linalg::stats::mean(&result.setpoints)),
            ],
            vec![
                "mean inlet (C)".into(),
                format!("{:.2}", tesla_linalg::stats::mean(&result.inlet_avg)),
            ],
            vec!["mean |set-point - inlet| (C)".into(), {
                let residual: f64 = result
                    .setpoints
                    .iter()
                    .zip(&result.inlet_avg)
                    .map(|(s, i)| (s - i).abs())
                    .sum::<f64>()
                    / minutes as f64;
                format!("{residual:.2}")
            }],
            vec![
                "mean ACU power (kW)".into(),
                format!("{:.2}", tesla_linalg::stats::mean(&result.acu_power)),
            ],
            vec!["max cold-aisle (C)".into(), {
                let m = result
                    .cold_aisle_max
                    .iter()
                    .cloned()
                    .fold(f64::MIN, f64::max);
                format!("{m:.2}")
            }],
            vec!["minutes above 22 C limit".into(), format!("{above}")],
            vec!["TSV (%)".into(), format!("{:.1}", result.tsv_percent)],
            vec!["CI (%)".into(), format!("{:.1}", result.ci_percent)],
        ],
    );
    println!("\npaper: {paper_note}");
    println!(
        "\n{}",
        plot::ascii_chart_titled("executed set-point (C)", &result.setpoints, 100, 7)
    );
    println!(
        "{}",
        plot::ascii_chart_titled(
            "max cold-aisle temperature (C)",
            &result.cold_aisle_max,
            100,
            7
        )
    );
    println!(
        "{}",
        plot::ascii_chart_titled("ACU power (kW)", &result.acu_power, 100, 7)
    );
    let path = export_csv(
        &csv_slug(&format!("{}_{}", figure, result.controller)),
        &[
            "hour",
            "setpoint_c",
            "inlet_c",
            "acu_power_kw",
            "cold_aisle_max_c",
            "limit_c",
        ],
        &[
            &hours,
            &result.setpoints,
            &result.inlet_avg,
            &result.acu_power,
            &result.cold_aisle_max,
            &limit,
        ],
    );
    println!("series written to {}", path.display());
}

/// Runs one controller through a standard evaluation episode.
pub fn run_standard_episode(
    controller: &mut dyn tesla_core::Controller,
    setting: tesla_workload::LoadSetting,
    minutes: usize,
    seed: u64,
) -> tesla_core::EvalResult {
    let cfg = tesla_core::EpisodeConfig {
        setting,
        minutes,
        warmup_minutes: 60,
        seed,
        ..tesla_core::EpisodeConfig::default()
    };
    profile::time_episode(|| tesla_core::run_episode(controller, &cfg).expect("episode"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_forecast::ModelConfig;

    #[test]
    fn cached_sweep_roundtrip_matches() {
        // Second call must come from the CSV cache and match exactly.
        let a = cached_sweep(0.02, 0xABCDE);
        let b = cached_sweep(0.02, 0xABCDE);
        assert_eq!(a.setpoint, b.setpoint);
        assert_eq!(a.avg_power, b.avg_power);
        let _ = std::fs::remove_file("bench_results/sweep_29m_abcde.csv");
    }

    #[test]
    fn traces_and_mape_protocol_smoke() {
        let (train, test) = train_test_traces(0.4, 0.2, 5);
        let cfg = ModelConfig {
            horizon: 6,
            ..ModelConfig::default()
        };
        let model = DcTimeSeriesModel::fit(&train, cfg).unwrap();
        let mape = temperature_mape_tesla(&model, &test, 23);
        assert!(mape.is_finite() && mape > 0.0 && mape < 50.0, "MAPE {mape}");
    }

    #[test]
    fn energy_dataset_shapes() {
        let (train, _) = train_test_traces(0.2, 0.1, 6);
        let (x, y) = energy_dataset(&train, 5, 7);
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        assert_eq!(x[0].len(), 5 + 2 * 5);
        assert!(y.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn recursive_mape_protocols_agree_on_scale() {
        let (train, test) = train_test_traces(0.4, 0.2, 5);
        let ar = RecursiveAr::fit(&train, 2, 0.0).unwrap();
        let m_ar = temperature_mape_recursive(&ar, &test, 6, 29);
        assert!(
            m_ar.is_finite() && m_ar > 0.0 && m_ar < 50.0,
            "AR MAPE {m_ar}"
        );
        let mlp = RecursiveMlp::fit(
            &train,
            MlpConfig {
                hidden: vec![16],
                epochs: 3,
                seed: 2,
                ..MlpConfig::default()
            },
        );
        let m_mlp = temperature_mape_mlp(&mlp, &test, 6, 29);
        assert!(
            m_mlp.is_finite() && m_mlp > 0.0 && m_mlp < 80.0,
            "MLP MAPE {m_mlp}"
        );
    }

    #[test]
    fn recursive_mlp_rollout_shapes_and_sanity() {
        let (train, _) = train_test_traces(0.3, 0.1, 8);
        let mlp = RecursiveMlp::fit(
            &train,
            MlpConfig {
                hidden: vec![16],
                epochs: 4,
                seed: 1,
                ..MlpConfig::default()
            },
        );
        let window = train.window_at(train.len() - 10, 6).unwrap();
        let roll = mlp.predict_rollout(&window, &[23.0; 6]);
        assert_eq!(roll.len(), train.n_dc_sensors());
        assert_eq!(roll[0].len(), 6);
        for series in &roll {
            for v in series {
                assert!(v.is_finite());
                assert!(*v > -20.0 && *v < 80.0, "implausible temp {v}");
            }
        }
    }

    #[test]
    fn arg_parsing_default() {
        assert_eq!(arg_f64("nonexistent-flag", 2.5), 2.5);
    }

    #[test]
    fn csv_slug_is_shell_safe() {
        assert_eq!(csv_slug("Fig10_fixed-23C"), "fig10_fixed_23c");
        assert_eq!(csv_slug("Fig9_tesla"), "fig9_tesla");
        assert_eq!(csv_slug("Figure 11"), "figure_11");
        assert!(csv_slug("Fig12_tsrl")
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
    }

    #[test]
    fn csv_export_writes_file() {
        let p = export_csv("unit_test", &["a", "b"], &[&[1.0, 2.0], &[3.0, 4.0]]);
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.starts_with("a,b\n1,3\n2,4"));
        let _ = std::fs::remove_file(p);
    }
}
