//! Terminal plotting: render a time series as a Unicode braille-free
//! block chart so the figure binaries show their shape without leaving
//! the terminal (the CSVs remain the plottable artifact).

/// Renders `series` as an ASCII chart of `height` rows, downsampled to at
/// most `width` columns. Returns the multi-line string.
pub fn ascii_chart(series: &[f64], width: usize, height: usize) -> String {
    let width = width.clamp(8, 240);
    let height = height.clamp(2, 40);
    if series.is_empty() {
        return String::from("(empty series)");
    }
    // Downsample by bucket mean.
    let cols = width.min(series.len());
    let bucket = series.len() as f64 / cols as f64;
    let sampled: Vec<f64> = (0..cols)
        .map(|c| {
            let lo = (c as f64 * bucket) as usize;
            let hi = (((c + 1) as f64 * bucket) as usize).clamp(lo + 1, series.len());
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();

    let min = sampled.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sampled.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if (max - min).abs() < 1e-12 {
        1.0
    } else {
        max - min
    };

    let mut rows = vec![vec![' '; cols]; height];
    for (c, &v) in sampled.iter().enumerate() {
        let level = ((v - min) / span * (height - 1) as f64).round() as usize;
        // Fill from the bottom to the level for a solid silhouette.
        for (r, row) in rows.iter_mut().enumerate() {
            let from_bottom = height - 1 - r;
            if from_bottom < level {
                row[c] = '░';
            } else if from_bottom == level {
                row[c] = '█';
            }
        }
    }

    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let label = if r == 0 {
            format!("{max:>8.2} ┤")
        } else if r == height - 1 {
            format!("{min:>8.2} ┤")
        } else {
            format!("{:>8} │", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Renders two aligned series one above the other with titles.
pub fn ascii_chart_titled(title: &str, series: &[f64], width: usize, height: usize) -> String {
    format!("{title}\n{}", ascii_chart(series, width, height))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_requested_rows() {
        let s: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin()).collect();
        let chart = ascii_chart(&s, 60, 8);
        assert_eq!(chart.lines().count(), 8);
        for line in chart.lines() {
            assert!(line.chars().count() <= 60 + 10);
        }
    }

    #[test]
    fn extremes_appear_in_labels() {
        let s = vec![1.0, 5.0, 3.0, 2.0];
        let chart = ascii_chart(&s, 20, 4);
        assert!(chart.contains("5.00"));
        assert!(chart.contains("1.00"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = ascii_chart(&[2.0; 50], 20, 4);
        assert!(chart.contains('█'));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert_eq!(ascii_chart(&[], 20, 4), "(empty series)");
    }

    #[test]
    fn long_series_downsamples() {
        let s: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let chart = ascii_chart(&s, 40, 6);
        assert_eq!(chart.lines().count(), 6);
    }

    #[test]
    fn titled_variant_prepends_title() {
        let out = ascii_chart_titled("ACU power", &[1.0, 2.0], 10, 3);
        assert!(out.starts_with("ACU power\n"));
    }
}
