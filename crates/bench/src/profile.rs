//! Per-phase latency profiling for the benchmark binaries.
//!
//! The instrumented crates feed latency histograms into `tesla-obs`
//! (`tesla_decide_seconds`, `bo_decision_seconds`, `forecast_*_seconds`);
//! this module times whole episodes on top of that and renders the
//! combined breakdown into the `BENCH_*.json` artifacts, so a benchmark
//! report always says *where* its wall-clock went.

use std::path::PathBuf;

/// Histograms summarized into the per-phase latency breakdown, in report
/// order.
const PHASE_HISTOGRAMS: &[(&str, &str)] = &[
    ("bench_episode_wall_seconds", "whole episode"),
    ("tesla_decide_seconds", "TESLA control step"),
    ("bo_decision_seconds", "BO decision"),
    ("forecast_fit_seconds", "forecast model fit"),
    ("forecast_prepare_seconds", "forecast prepare"),
    ("forecast_predict_seconds", "forecast predict"),
    ("checkpoint_write_seconds", "checkpoint write"),
    ("checkpoint_restore_seconds", "checkpoint restore"),
    ("restart_recovery_seconds", "restart recovery"),
    ("tesla_net_query_seconds", "TLP query round-trip"),
    ("tesla_net_request_seconds", "TLP request dispatch"),
    ("tesla_fleet_zone_decide_seconds", "fleet zone decide"),
    ("tesla_fleet_zone_advance_seconds", "fleet zone advance"),
    (
        "tesla_fleet_coordinator_seconds",
        "fleet budget arbitration",
    ),
    ("tesla_fleet_minute_seconds", "fleet control minute"),
    ("tesla_fleet_snapshot_seconds", "fleet snapshot write"),
];

/// Runs `f` with the episode wall-clock histogram observing its duration.
pub fn time_episode<T>(f: impl FnOnce() -> T) -> T {
    let _t = tesla_obs::Timer::start(tesla_obs::histogram!("bench_episode_wall_seconds"));
    f()
}

/// One phase's latency summary.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// Metric name of the underlying histogram.
    pub metric: &'static str,
    /// Human label for the phase.
    pub label: &'static str,
    /// Observation count.
    pub count: u64,
    /// Total seconds across observations.
    pub total_seconds: f64,
    /// Bucket-resolution quantiles, seconds.
    pub p50: f64,
    /// 90th percentile, seconds.
    pub p90: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
}

/// Summarizes every phase histogram that has recorded at least one
/// observation in the global registry.
pub fn phase_summaries() -> Vec<PhaseSummary> {
    PHASE_HISTOGRAMS
        .iter()
        .map(|&(metric, label)| {
            let h = tesla_obs::global().histogram(metric, &[]);
            PhaseSummary {
                metric,
                label,
                count: h.count(),
                total_seconds: h.sum(),
                p50: h.quantile(0.5),
                p90: h.quantile(0.9),
                p99: h.quantile(0.99),
            }
        })
        .filter(|s| s.count > 0)
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders the phase breakdown as a JSON array (hand-rolled; the
/// workspace carries no serde).
pub fn latency_breakdown_json() -> String {
    let mut out = String::from("[");
    for (i, s) in phase_summaries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"metric\":\"{}\",\"label\":\"{}\",\"count\":{},\"total_seconds\":{},\
             \"p50_seconds\":{},\"p90_seconds\":{},\"p99_seconds\":{}}}",
            s.metric,
            s.label,
            s.count,
            json_f64(s.total_seconds),
            json_f64(s.p50),
            json_f64(s.p90),
            json_f64(s.p99),
        ));
    }
    out.push(']');
    out
}

/// Writes `bench_results/BENCH_<name>.json` with the given top-level
/// `fields` (already-rendered JSON values) plus the latency breakdown
/// under `"latency_breakdown"`. Returns the path written.
pub fn write_bench_json(name: &str, fields: &[(&str, String)]) -> PathBuf {
    let dir = PathBuf::from("bench_results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut body = String::from("{");
    for (k, v) in fields {
        body.push_str(&format!("\"{k}\":{v},"));
    }
    body.push_str(&format!(
        "\"latency_breakdown\":{}}}",
        latency_breakdown_json()
    ));
    let _ = std::fs::write(&path, body);
    path
}

/// Extracts `p50_seconds` for `metric` from a `BENCH_*.json` body's
/// `latency_breakdown` array. Hand-rolled to match the hand-rolled
/// writer above (the workspace carries no serde); returns `None` when
/// the metric is absent or the number fails to parse.
pub fn breakdown_p50(json: &str, metric: &str) -> Option<f64> {
    let entry = json.find(&format!("\"metric\":\"{metric}\""))?;
    let rest = &json[entry..];
    // Stay inside this breakdown entry: the value must appear before
    // the entry's closing brace.
    let end = rest.find('}')?;
    let entry_body = &rest[..end];
    let key = "\"p50_seconds\":";
    let at = entry_body.find(key)? + key.len();
    let tail = &entry_body[at..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_episode_records_and_renders() {
        tesla_obs::set_enabled(true);
        let v = time_episode(|| 41 + 1);
        assert_eq!(v, 42);
        let breakdown = latency_breakdown_json();
        assert!(breakdown.contains("bench_episode_wall_seconds"));
        let summaries = phase_summaries();
        assert!(summaries
            .iter()
            .any(|s| s.metric == "bench_episode_wall_seconds" && s.count >= 1));
    }

    #[test]
    fn bench_json_has_fields_and_breakdown() {
        tesla_obs::set_enabled(true);
        time_episode(|| ());
        let p = write_bench_json(
            "profile_unit_test",
            &[("answer", "42".to_string()), ("note", "\"ok\"".to_string())],
        );
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.contains("\"answer\":42"));
        assert!(body.contains("\"latency_breakdown\":["));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn breakdown_p50_reads_the_requested_metric() {
        let body = "{\"x\":1,\"latency_breakdown\":[\
            {\"metric\":\"a_seconds\",\"label\":\"a\",\"count\":3,\
             \"total_seconds\":1.0,\"p50_seconds\":0.05,\"p90_seconds\":0.06,\
             \"p99_seconds\":0.07},\
            {\"metric\":\"b_seconds\",\"label\":\"b\",\"count\":3,\
             \"total_seconds\":1.0,\"p50_seconds\":0.002,\"p90_seconds\":0.003,\
             \"p99_seconds\":0.004}]}";
        assert_eq!(breakdown_p50(body, "a_seconds"), Some(0.05));
        assert_eq!(breakdown_p50(body, "b_seconds"), Some(0.002));
        assert_eq!(breakdown_p50(body, "missing"), None);
        assert_eq!(breakdown_p50("not json", "a_seconds"), None);
    }
}
