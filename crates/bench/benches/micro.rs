//! Criterion micro-benchmarks for the performance-critical kernels:
//! simulator stepping, forecaster training/prediction, GP fitting, one
//! full Bayesian-optimizer decision, and the ensemble learners.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tesla_bo::{BayesianOptimizer, BoConfig};
use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_forecast::{DcTimeSeriesModel, ModelConfig};
use tesla_gp::{qmc_normal, FixedNoiseGp, Matern52};
use tesla_ml::{Dataset, ForestConfig, RandomForest};
use tesla_sim::{SimConfig, Testbed};
use tesla_units::Celsius;

fn bench_sim_step(c: &mut Criterion) {
    let sim = SimConfig::default();
    let utils = vec![0.3; sim.n_servers];
    c.bench_function("sim/step_one_minute", |b| {
        let mut tb = Testbed::new(sim.clone(), 1).unwrap();
        tb.write_setpoint(Celsius::new(23.0));
        b.iter(|| black_box(tb.step_sample(&utils).unwrap()));
    });
}

fn bench_forecast(c: &mut Criterion) {
    let trace = generate_sweep_trace(&DatasetConfig {
        days: 0.5,
        seed: 1,
        ..DatasetConfig::default()
    })
    .unwrap();
    let cfg = ModelConfig {
        horizon: 10,
        ..ModelConfig::default()
    };
    c.bench_function("forecast/fit_half_day_L10", |b| {
        b.iter(|| black_box(DcTimeSeriesModel::fit(&trace, cfg.clone()).unwrap()));
    });
    let model = DcTimeSeriesModel::fit(&trace, cfg).unwrap();
    let window = trace.window_at(trace.len() - 12, 10).unwrap();
    c.bench_function("forecast/predict_horizon", |b| {
        b.iter(|| black_box(model.predict(&window, Celsius::new(24.0)).unwrap()));
    });
}

fn bench_gp(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..16).map(|i| vec![20.0 + i as f64]).collect();
    let ys: Vec<f64> = xs.iter().map(|p| (p[0] / 3.0).sin()).collect();
    let noise = vec![1e-3; xs.len()];
    c.bench_function("gp/fit_16_points", |b| {
        b.iter(|| {
            black_box(FixedNoiseGp::fit(Matern52::new(2.0, 1.0), xs.clone(), &ys, &noise).unwrap())
        });
    });
    let gp = FixedNoiseGp::fit(Matern52::new(2.0, 1.0), xs, &ys, &noise).unwrap();
    let queries: Vec<Vec<f64>> = (0..61).map(|i| vec![20.0 + i as f64 * 0.25]).collect();
    c.bench_function("gp/posterior_61_queries", |b| {
        b.iter(|| black_box(gp.posterior(&queries)));
    });
    let normals = qmc_normal(64, 8);
    let q8: Vec<Vec<f64>> = (0..8).map(|i| vec![21.0 + i as f64]).collect();
    c.bench_function("gp/sample_posterior_64x8", |b| {
        b.iter(|| black_box(gp.sample_posterior(&q8, &normals).unwrap()));
    });
}

fn bench_bo_decision(c: &mut Criterion) {
    let opt = BayesianOptimizer::new(BoConfig {
        n_init: 6,
        n_iter: 3,
        n_mc: 32,
        n_grid: 31,
        ..BoConfig::default()
    })
    .unwrap();
    c.bench_function("bo/full_decision", |b| {
        b.iter(|| {
            black_box(
                opt.optimize(|s| (-(s - 26.0) * (s - 26.0), s - 28.0), (0.01, 0.01), 7)
                    .unwrap(),
            )
        });
    });
}

fn bench_forest(c: &mut Criterion) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..400 {
        let a = (i % 20) as f64 / 19.0;
        let b = (i / 20) as f64 / 19.0;
        x.push(vec![a, b, a * b, a - b]);
        y.push((a * 3.0).sin() + b);
    }
    let data = Dataset::new(x, y).unwrap();
    c.bench_function("ml/random_forest_40_trees", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                black_box(
                    RandomForest::fit(
                        &d,
                        ForestConfig {
                            n_trees: 40,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                )
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_step, bench_forecast, bench_gp, bench_bo_decision, bench_forest
);
criterion_main!(benches);
