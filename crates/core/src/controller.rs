//! The controller interface shared by TESLA and the baselines.

use tesla_forecast::Trace;

/// A cooling controller: at each sampling period it observes the full
/// telemetry history so far and returns the set-point to execute next.
///
/// Controllers are `Send` so the threaded runtime (§4's consumer process)
/// can own them on a worker thread.
pub trait Controller: Send {
    /// Human-readable name (used in benchmark tables).
    fn name(&self) -> &str;

    /// Decides the set-point to execute for the next sampling period.
    ///
    /// `history` contains every observed sample up to and including the
    /// current one; implementations typically look at the trailing `L`
    /// samples. Until enough history accumulates they should return a
    /// safe default.
    fn decide(&mut self, history: &Trace) -> f64;

    /// Resets internal state between episodes.
    fn reset(&mut self) {}

    /// Serializes the controller's resumable decision state for a
    /// checkpoint. `None` (the default) means the controller is
    /// stateless across decisions — a resume then needs nothing beyond
    /// the prefix replay to be bit-identical.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`Controller::save_state`]. Returns
    /// `false` (the default) when the controller carries no such state or
    /// the bytes don't parse; the resume path treats that as "nothing to
    /// install" and relies on the replay hook alone.
    fn load_state(&mut self, state: &[u8]) -> bool {
        let _ = state;
        false
    }

    /// Called once per replayed minute during a resume's prefix replay,
    /// *instead of* [`Controller::decide`], with the history the original
    /// decision saw. Implementations re-run whatever deterministic,
    /// history-derived state evolution the skipped decision would have
    /// performed (e.g. TESLA's online model retrains); per-decision state
    /// that wall-clock or sampling noise could perturb belongs in
    /// [`Controller::save_state`] instead.
    fn replay_minute(&mut self, minute: usize, history: &Trace) {
        let _ = (minute, history);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo(f64);
    impl Controller for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn decide(&mut self, _history: &Trace) -> f64 {
            self.0
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut c: Box<dyn Controller> = Box::new(Echo(23.0));
        assert_eq!(c.decide(&Trace::with_sensors(1, 1)), 23.0);
        assert_eq!(c.name(), "echo");
        c.reset();
    }
}
