//! The smoothing buffer of §3.4.
//!
//! Set-point transitions take time and cost energy (§2.2, Fig. 4), so the
//! optimizer's raw output is not executed directly: a length-`N` buffer
//! stores the computed set-points and the ACU receives their running
//! average — "a low-pass filter that removes the high-frequency
//! variations in the computed set-points" (Table 2: `N = 5`).

use std::collections::VecDeque;

/// Running-average smoothing buffer.
#[derive(Debug, Clone)]
pub struct SmoothingBuffer {
    capacity: usize,
    values: VecDeque<f64>,
}

impl SmoothingBuffer {
    /// Creates a buffer of length `n` (min 1).
    pub fn new(n: usize) -> Self {
        SmoothingBuffer {
            capacity: n.max(1),
            values: VecDeque::new(),
        }
    }

    /// Buffer capacity `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored set-points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Pushes a computed set-point and returns the smoothed (executed)
    /// value: the running average of the stored contents.
    pub fn push(&mut self, setpoint: f64) -> f64 // lint:allow(no-raw-f64-in-public-api): raw decision stream averaging
    {
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(setpoint);
        self.average()
    }

    /// The current running average (the executed set-point).
    pub fn average(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Clears the buffer (e.g. on controller reset).
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Snapshot of the stored set-points, oldest first (checkpointing).
    pub fn snapshot(&self) -> Vec<f64> // lint:allow(no-raw-f64-in-public-api): raw decision stream snapshot
    {
        self.values.iter().copied().collect()
    }

    /// Replaces the contents with a snapshot taken by
    /// [`SmoothingBuffer::snapshot`], keeping only the newest `capacity`
    /// values.
    pub fn restore(&mut self, values: &[f64])
    // lint:allow(no-raw-f64-in-public-api): raw decision stream snapshot
    {
        self.values.clear();
        let skip = values.len().saturating_sub(self.capacity);
        self.values.extend(values.iter().skip(skip).copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_partial_buffer() {
        let mut b = SmoothingBuffer::new(5);
        assert_eq!(b.push(10.0), 10.0);
        assert_eq!(b.push(20.0), 15.0);
        assert_eq!(b.push(30.0), 20.0);
    }

    #[test]
    fn rolls_over_at_capacity() {
        let mut b = SmoothingBuffer::new(3);
        b.push(1.0);
        b.push(2.0);
        b.push(3.0);
        // Buffer now [1,2,3]; pushing 7 evicts 1 -> [2,3,7].
        assert_eq!(b.push(7.0), 4.0);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn constant_input_is_identity() {
        let mut b = SmoothingBuffer::new(5);
        for _ in 0..10 {
            assert_eq!(b.push(23.0), 23.0);
        }
    }

    #[test]
    fn damps_a_step_change() {
        // A sudden 20→30 step must be spread over N samples.
        let mut b = SmoothingBuffer::new(5);
        for _ in 0..5 {
            b.push(20.0);
        }
        let first = b.push(30.0);
        assert_eq!(first, 22.0); // (20*4 + 30)/5
        let mut out = first;
        for _ in 0..4 {
            out = b.push(30.0);
        }
        assert_eq!(out, 30.0);
    }

    #[test]
    fn smoothed_output_bounded_by_input_range() {
        let mut b = SmoothingBuffer::new(4);
        let inputs = [25.0, 20.0, 35.0, 22.0, 28.0, 20.5];
        for v in inputs {
            let out = b.push(v);
            assert!((20.0..=35.0).contains(&out));
        }
    }

    #[test]
    fn capacity_one_is_passthrough() {
        let mut b = SmoothingBuffer::new(1);
        assert_eq!(b.push(21.0), 21.0);
        assert_eq!(b.push(29.0), 29.0);
    }

    #[test]
    fn clear_resets() {
        let mut b = SmoothingBuffer::new(3);
        b.push(20.0);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.push(30.0), 30.0);
    }
}
