//! Closed-loop episode runner and the Table 5 metrics.
//!
//! §5.3 evaluates each controller over a 12-hour period under one of the
//! three load settings, reporting cooling energy (CE), thermal-safety
//! violation time (TSV, % of the period a cold-aisle sensor exceeded
//! 22 °C), and cooling interruption (CI, % of the period with ACU power
//! at the fan floor).

use crate::controller::Controller;
use crate::dataset::push_observation;
use crate::CoreError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_forecast::Trace;
use tesla_sim::{FaultPlan, SimConfig, Testbed};
use tesla_units::{Celsius, NOMINAL_SETPOINT};
use tesla_workload::{DiurnalProfile, LoadSetting, Orchestrator, Placement};

/// Episode parameters.
#[derive(Debug, Clone)]
pub struct EpisodeConfig {
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Load setting (§5.1).
    pub setting: LoadSetting,
    /// Evaluated duration in minutes (720 = the paper's 12 hours).
    pub minutes: usize,
    /// Warm-up minutes before metering starts (fills the controller's
    /// history window; runs at the profile's starting load, 23 °C).
    pub warmup_minutes: usize,
    /// Cold-aisle limit used for the TSV metric.
    pub d_allowed: Celsius,
    /// Job-placement policy (§8 future work: energy-aware consolidation).
    pub placement: Placement,
    /// RNG seed (shared by testbed and workload).
    pub seed: u64,
    /// Fault-injection plan installed on the testbed (default: none).
    /// Windows are in testbed simulation minutes, i.e. warm-up included.
    pub faults: FaultPlan,
    /// Telemetry retention for long episodes (default: keep everything).
    /// When set, the supervised runner bounds the in-process [`Trace`] to
    /// the policy's raw horizon (`raw_horizon_s` of 1-minute samples), so
    /// a week-long episode holds days — not weeks — of history in memory.
    /// The same policy type drives the historian's on-disk ageing.
    pub retention: Option<tesla_historian::RetentionPolicy>,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            sim: SimConfig::default(),
            setting: LoadSetting::Medium,
            minutes: 720,
            warmup_minutes: 60,
            d_allowed: Celsius::new(22.0),
            placement: Placement::Spread,
            seed: 0,
            faults: FaultPlan::none(),
            retention: None,
        }
    }
}

/// Metrics and traces from one closed-loop episode.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Controller name.
    pub controller: String,
    /// Load setting evaluated.
    pub setting: LoadSetting,
    /// Total cooling energy over the metered period, kWh (Table 5's CE).
    pub cooling_energy_kwh: f64, // lint:allow(no-raw-f64-in-public-api): aggregate metric record
    /// % of metered samples with a cold-aisle sensor above the limit.
    pub tsv_percent: f64,
    /// % of metered time in cooling interruption (ACU at the fan floor).
    pub ci_percent: f64,
    /// Executed set-point per minute.
    pub setpoints: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Mean ACU inlet temperature per minute.
    pub inlet_avg: Vec<f64>,
    /// Max cold-aisle sensor reading per minute.
    pub cold_aisle_max: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// ACU instantaneous power per minute, kW.
    pub acu_power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Average per-server power per minute, kW.
    pub avg_server_power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Total server (IT) energy over the metered period, kWh.
    pub server_energy_kwh: f64, // lint:allow(no-raw-f64-in-public-api): aggregate metric record
    /// The full telemetry trace (warm-up + metered period).
    pub trace: Trace,
    /// Index in `trace` where metering started.
    pub metered_from: usize,
    /// Minutes the supervised runtime spent in safe mode (0 for
    /// unsupervised runs).
    pub safe_mode_minutes: u64,
}

impl EvalResult {
    /// Relative CE saving versus a baseline result, in percent
    /// (Table 5's "CE Saving" column).
    pub fn saving_vs(&self, baseline: &EvalResult) -> f64 {
        if baseline.cooling_energy_kwh <= 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.cooling_energy_kwh / baseline.cooling_energy_kwh)
    }

    /// Cooling overhead: cooling energy divided by IT (server) energy —
    /// the cooling contribution to PUE−1. §8: "TESLA improves DC's energy
    /// efficiency by reducing the energy of the cooling system relative
    /// to that of servers."
    pub fn cooling_overhead(&self) -> f64 {
        if self.server_energy_kwh <= 0.0 {
            return 0.0;
        }
        self.cooling_energy_kwh / self.server_energy_kwh
    }
}

/// Runs one controller through one 12-hour (by default) episode.
pub fn run_episode(
    controller: &mut dyn Controller,
    config: &EpisodeConfig,
) -> Result<EvalResult, CoreError> {
    let mut testbed = Testbed::new(config.sim.clone(), config.seed)?;
    testbed.set_fault_plan(config.faults.clone());
    let mut orch = Orchestrator::with_placement(config.sim.n_servers, config.placement);
    let mut profile = DiurnalProfile::new(config.setting, config.minutes as f64 * 60.0);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xEE);
    let mut trace = Trace::with_sensors(config.sim.n_acu_sensors, config.sim.n_dc_sensors);

    controller.reset();
    testbed.write_setpoint(NOMINAL_SETPOINT);

    // Warm-up: starting load, history accumulates, controller idle.
    for m in 0..config.warmup_minutes {
        let target = profile.sample(0.0, &mut rng);
        let utils = orch.tick(config.sim.sample_period_s, target, &mut rng);
        let obs = testbed.step_sample(&utils)?;
        push_observation(&mut trace, &obs);
        let _ = m;
    }
    let metered_from = trace.len();

    let mut cooling_energy_kwh = 0.0;
    let mut violations = 0usize;
    let mut interrupted = 0.0;
    let mut setpoints = Vec::with_capacity(config.minutes);
    let mut inlet_avg = Vec::with_capacity(config.minutes);
    let mut cold_aisle_max = Vec::with_capacity(config.minutes);
    let mut acu_power = Vec::with_capacity(config.minutes);
    let mut avg_server_power = Vec::with_capacity(config.minutes);
    let mut server_energy_kwh = 0.0;

    for m in 0..config.minutes {
        // Decide from the history so far, execute, then advance a minute.
        let sp = controller.decide(&trace);
        testbed.write_setpoint(Celsius::new(sp));

        let target = profile.sample(m as f64 * 60.0, &mut rng);
        let utils = orch.tick(config.sim.sample_period_s, target, &mut rng);
        let obs = testbed.step_sample(&utils)?;

        cooling_energy_kwh += obs.acu_energy_kwh;
        if obs.cold_aisle_max > config.d_allowed.value() {
            violations += 1;
        }
        interrupted += obs.interrupted_frac;
        setpoints.push(testbed.setpoint().value());
        inlet_avg.push(
            obs.acu_inlet_temps.iter().sum::<f64>() / obs.acu_inlet_temps.len().max(1) as f64,
        );
        cold_aisle_max.push(obs.cold_aisle_max);
        acu_power.push(obs.acu_power_kw);
        avg_server_power.push(obs.avg_server_power_kw);
        server_energy_kwh +=
            obs.server_powers_kw.iter().sum::<f64>() * config.sim.sample_period_s / 3600.0;
        push_observation(&mut trace, &obs);
    }

    Ok(EvalResult {
        controller: controller.name().to_string(),
        setting: config.setting,
        cooling_energy_kwh,
        tsv_percent: 100.0 * violations as f64 / config.minutes.max(1) as f64,
        ci_percent: 100.0 * interrupted / config.minutes.max(1) as f64,
        setpoints,
        inlet_avg,
        cold_aisle_max,
        acu_power,
        avg_server_power,
        server_energy_kwh,
        trace,
        metered_from,
        safe_mode_minutes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;

    fn quick_episode(setting: LoadSetting, minutes: usize, seed: u64) -> EvalResult {
        let mut ctrl = FixedController::new(Celsius::new(23.0));
        let cfg = EpisodeConfig {
            setting,
            minutes,
            warmup_minutes: 30,
            seed,
            ..EpisodeConfig::default()
        };
        run_episode(&mut ctrl, &cfg).unwrap()
    }

    #[test]
    fn fixed_23_is_thermally_safe() {
        let r = quick_episode(LoadSetting::Medium, 120, 1);
        assert_eq!(r.tsv_percent, 0.0, "fixed 23 °C must not violate");
        assert!(r.ci_percent < 10.0);
        assert!(r.cooling_energy_kwh > 0.0);
    }

    #[test]
    fn result_vectors_have_episode_length() {
        let r = quick_episode(LoadSetting::Idle, 60, 2);
        assert_eq!(r.setpoints.len(), 60);
        assert_eq!(r.cold_aisle_max.len(), 60);
        assert_eq!(r.acu_power.len(), 60);
        assert_eq!(r.trace.len(), 90); // warm-up + metered
        assert_eq!(r.metered_from, 30);
    }

    #[test]
    fn higher_load_burns_more_cooling_energy() {
        let idle = quick_episode(LoadSetting::Idle, 180, 3);
        let high = quick_episode(LoadSetting::High, 180, 3);
        assert!(
            high.cooling_energy_kwh > idle.cooling_energy_kwh,
            "high {} vs idle {}",
            high.cooling_energy_kwh,
            idle.cooling_energy_kwh
        );
    }

    #[test]
    fn cooling_overhead_is_ce_over_it() {
        let r = quick_episode(LoadSetting::Medium, 60, 8);
        assert!(r.server_energy_kwh > 0.0);
        let expect = r.cooling_energy_kwh / r.server_energy_kwh;
        assert!((r.cooling_overhead() - expect).abs() < 1e-12);
        assert!(r.cooling_overhead() > 0.1 && r.cooling_overhead() < 2.0);
    }

    #[test]
    fn saving_vs_baseline() {
        let a = quick_episode(LoadSetting::Medium, 60, 4);
        let mut b = a.clone();
        b.cooling_energy_kwh = a.cooling_energy_kwh * 0.9;
        assert!((b.saving_vs(&a) - 10.0).abs() < 1e-9);
        assert_eq!(a.saving_vs(&a), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_episode(LoadSetting::Medium, 45, 9);
        let b = quick_episode(LoadSetting::Medium, 45, 9);
        assert_eq!(a.cooling_energy_kwh, b.cooling_energy_kwh);
        assert_eq!(a.cold_aisle_max, b.cold_aisle_max);
    }
}
