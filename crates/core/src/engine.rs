//! The per-zone supervised episode engine.
//!
//! [`crate::run_supervised_episode`] used to own the whole world — the
//! testbed, the workload, the trace, the accumulators — in one loop.
//! Fleet-scale control needs hundreds of those worlds stepping
//! concurrently under a site coordinator, so the loop body lives here as
//! [`ZoneEpisode`]: one zone's plant, workload, sanitized trace, and
//! metric accumulators, advanced one control minute at a time.
//!
//! The decide/advance split is deliberate: the fleet coordinator
//! interposes *between* a zone's supervised decision and its execution
//! (site-budget arbitration may relax the set-point before the write),
//! while the single-zone driver simply calls them back to back. Both
//! paths execute the exact same per-minute sequence, which is what keeps
//! the single-zone episode bit-identical to the pre-refactor engine and
//! a one-zone fleet bit-identical to the single-zone episode.

use crate::controller::Controller;
use crate::dataset::push_observation;
use crate::experiment::{EpisodeConfig, EvalResult};
use crate::supervisor::Supervisor;
use crate::CoreError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_forecast::Trace;
use tesla_sim::{CoolingPlant, Observation};
use tesla_telemetry::{HealthConfig, HealthMonitor};
use tesla_units::{Celsius, Kilowatts, NOMINAL_SETPOINT};
use tesla_workload::{DiurnalProfile, Orchestrator};

/// What one advanced control minute produced, for the layers above the
/// zone (coordinator arbitration, historian collection, checkpointing).
#[derive(Debug, Clone)]
pub struct MinuteOutcome {
    /// The set-point actually latched in the plant after the write (the
    /// previous one if the write failed).
    pub executed: Celsius,
    /// Sensor-reported (sanitized) cold-aisle max this minute.
    pub observed_cold_aisle_max: Celsius,
    /// Ground-truth cold-aisle max this minute (safety scoring).
    pub true_cold_aisle_max: Celsius,
    /// ACU electrical power at the sample instant.
    pub acu_power_kw: Kilowatts,
    /// Average per-server electrical power.
    pub avg_server_power_kw: Kilowatts,
    /// The full sanitized observation (historian collection).
    pub observation: Observation,
}

/// One zone's supervised episode state: plant + workload + sanitized
/// trace + accumulators, stepped one control minute at a time.
///
/// The controller and supervisor stay *outside* (passed per call) so an
/// owner — the single-zone driver or a fleet zone actor — can hold them
/// alongside and interleave its own logic between decide and advance.
pub struct ZoneEpisode<P: CoolingPlant> {
    plant: P,
    config: EpisodeConfig,
    orch: Orchestrator,
    profile: DiurnalProfile,
    rng: StdRng,
    trace: Trace,
    n_cold: usize,
    cold_health: HealthMonitor,
    rest_health: HealthMonitor,
    inlet_health: HealthMonitor,
    trace_keep: Option<usize>,
    dropped_total: usize,
    metered_from: usize,
    dropped_at_metering: usize,
    cooling_energy_kwh: f64,
    violations: usize,
    interrupted: f64,
    setpoints: Vec<f64>,
    inlet_avg: Vec<f64>,
    cold_aisle_max: Vec<f64>,
    acu_power: Vec<f64>,
    avg_server_power: Vec<f64>,
    server_energy_kwh: f64,
}

impl<P: CoolingPlant> ZoneEpisode<P> {
    /// Wraps a freshly built plant in episode state. The caller resets
    /// its controller/supervisor itself (they are not owned here); the
    /// plant is initialized to the nominal set-point, exactly like the
    /// pre-refactor engine.
    pub fn new(plant: P, config: &EpisodeConfig) -> Self {
        let mut plant = plant;
        plant.write_setpoint_clamped(NOMINAL_SETPOINT);
        let n_cold = config.sim.n_cold_aisle_sensors;
        // Separate monitors per signal family so imputation draws on
        // same-class peers: a quarantined cold-aisle sensor imputed from
        // a median that includes hot-aisle sensors would read several °C
        // high and fake a thermal violation. Cold-aisle sensors
        // physically cluster, so they also get the peer-deviation check,
        // which catches in-band lies (slow drift, stuck at a plausible
        // value) the range check is blind to.
        let cold_health = HealthMonitor::new(
            n_cold,
            HealthConfig {
                peer_deviation: 4.0,
                ..HealthConfig::default()
            },
        );
        let rest_health = HealthMonitor::new(
            config.sim.n_dc_sensors - n_cold,
            HealthConfig {
                max_value: 60.0,
                ..HealthConfig::default()
            },
        );
        let inlet_health = HealthMonitor::new(
            config.sim.n_acu_sensors,
            HealthConfig {
                max_value: 50.0,
                ..HealthConfig::default()
            },
        );
        // Bounded-memory trace retention, mirroring the historian's raw
        // horizon at the runner's 1-minute cadence. Drops are chunked
        // (only once the trace overshoots the horizon by 25%) so the
        // O(len) front drain amortizes instead of running every minute.
        let trace_keep = config
            .retention
            .map(|p| ((p.raw_horizon_s / 60.0).ceil() as usize).max(1));
        ZoneEpisode {
            orch: Orchestrator::with_placement(config.sim.n_servers, config.placement),
            profile: DiurnalProfile::new(config.setting, config.minutes as f64 * 60.0),
            rng: StdRng::seed_from_u64(config.seed ^ 0xEE),
            trace: Trace::with_sensors(config.sim.n_acu_sensors, config.sim.n_dc_sensors),
            n_cold,
            cold_health,
            rest_health,
            inlet_health,
            trace_keep,
            dropped_total: 0,
            metered_from: 0,
            dropped_at_metering: 0,
            cooling_energy_kwh: 0.0,
            violations: 0,
            interrupted: 0.0,
            setpoints: Vec::with_capacity(config.minutes),
            inlet_avg: Vec::with_capacity(config.minutes),
            cold_aisle_max: Vec::with_capacity(config.minutes),
            acu_power: Vec::with_capacity(config.minutes),
            avg_server_power: Vec::with_capacity(config.minutes),
            server_energy_kwh: 0.0,
            config: config.clone(),
            plant,
        }
    }

    /// The plant (fleet-level thermal bleed reads boundary state here).
    pub fn plant(&self) -> &P {
        &self.plant
    }

    /// Mutable plant access (fleet-level thermal bleed deposits here).
    pub fn plant_mut(&mut self) -> &mut P {
        &mut self.plant
    }

    /// The sanitized telemetry trace the controller sees.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executed set-points so far, °C (one per metered minute).
    // lint:allow(no-raw-f64-in-public-api): bulk series mirroring EvalResult's raw trace
    pub fn setpoints(&self) -> &[f64] {
        &self.setpoints
    }

    fn prune(&mut self) {
        if let Some(keep) = self.trace_keep {
            if self.trace.len() > keep + keep / 4 {
                let drop = self.trace.len() - keep;
                self.trace.drop_front(drop);
                self.dropped_total += drop;
            }
        }
    }

    /// Runs the warm-up minutes: physics settle toward equilibrium while
    /// the trace fills with sanitized pre-metering history.
    pub fn warmup(&mut self) -> Result<(), CoreError> {
        for _ in 0..self.config.warmup_minutes {
            let target = self.profile.sample(0.0, &mut self.rng);
            let utils = self
                .orch
                .tick(self.config.sim.sample_period_s, target, &mut self.rng);
            let mut obs = self.plant.step_sample(&utils)?;
            let (cold, rest) = obs.dc_temps.split_at_mut(self.n_cold);
            self.cold_health.sanitize(cold);
            self.rest_health.sanitize(rest);
            self.inlet_health.sanitize(&mut obs.acu_inlet_temps);
            push_observation(&mut self.trace, &obs);
            self.prune();
        }
        self.metered_from = self.trace.len();
        self.dropped_at_metering = self.dropped_total;
        Ok(())
    }

    /// One supervised decision over this zone's trace: the controller
    /// proposes, the watchdog times it, the ladder resolves it.
    pub fn decide(
        &mut self,
        supervisor: &mut Supervisor,
        controller: &mut dyn Controller,
    ) -> Celsius {
        supervisor.decide(controller, &self.trace)
    }

    /// The replay variant of [`ZoneEpisode::decide`]: the recorded
    /// executed set-point is forced and the controller only runs its
    /// deterministic replay hook (its full state is installed at the
    /// resume cursor).
    // lint:allow(no-raw-f64-in-public-api): replays EvalResult's raw recorded set-point
    pub fn replay_decision(
        &mut self,
        minute: usize,
        controller: &mut dyn Controller,
        recorded: f64,
    ) -> Celsius {
        controller.replay_minute(minute, &self.trace);
        Celsius::new(recorded)
    }

    /// Executes one control minute: write the set-point (with retries),
    /// sample the workload, step the physics, sanitize the telemetry,
    /// accumulate the episode metrics, and (unless replaying a resume
    /// prefix) close the supervisor's minute.
    pub fn advance(
        &mut self,
        minute: usize,
        sp: Celsius,
        supervisor: &mut Supervisor,
        replaying: bool,
    ) -> Result<MinuteOutcome, CoreError> {
        // A failed write leaves the previous set-point in force; the
        // ladder sees the failure through the stress signal.
        let _ = supervisor.write_with_retry(&mut self.plant, sp);

        let target = self.profile.sample(minute as f64 * 60.0, &mut self.rng);
        let utils = self
            .orch
            .tick(self.config.sim.sample_period_s, target, &mut self.rng);
        let mut obs = self.plant.step_sample(&utils)?;

        // Sanitize what the controller (and the trace) will see, then
        // recompute the sensor-reported cold-aisle max from the sanitized
        // readings so Eq. 9's signal is finite.
        let (cold, rest) = obs.dc_temps.split_at_mut(self.n_cold);
        let cold_report = self.cold_health.sanitize(cold);
        self.rest_health.sanitize(rest);
        self.inlet_health.sanitize(&mut obs.acu_inlet_temps);
        obs.cold_aisle_max = obs.dc_temps[..self.n_cold]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);

        self.cooling_energy_kwh += obs.acu_energy_kwh;
        // Score safety on ground truth: a stuck-at-45 °C sensor must not
        // masquerade as a violation, and a stuck-at-15 °C one must not
        // hide a real one.
        if obs.cold_aisle_max_true > self.config.d_allowed.value() {
            self.violations += 1;
        }
        self.interrupted += obs.interrupted_frac;
        let executed = self.plant.setpoint();
        self.setpoints.push(executed.value());
        self.inlet_avg.push(
            obs.acu_inlet_temps.iter().sum::<f64>() / obs.acu_inlet_temps.len().max(1) as f64,
        );
        self.cold_aisle_max.push(obs.cold_aisle_max_true);
        self.acu_power.push(obs.acu_power_kw);
        self.avg_server_power.push(obs.avg_server_power_kw);
        self.server_energy_kwh +=
            obs.server_powers_kw.iter().sum::<f64>() * self.config.sim.sample_period_s / 3600.0;
        push_observation(&mut self.trace, &obs);
        self.prune();

        // The cold monitor only sees indices 0..n_cold, so its report
        // needs no index filtering.
        let quarantined_cold = cold_report
            .imputed
            .iter()
            .chain(cold_report.newly_quarantined.iter())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        if !replaying {
            supervisor.end_of_minute(
                minute,
                quarantined_cold as f64 / self.n_cold.max(1) as f64,
                Celsius::new(obs.cold_aisle_max),
                executed,
            );
        }
        Ok(MinuteOutcome {
            executed,
            observed_cold_aisle_max: Celsius::new(obs.cold_aisle_max),
            true_cold_aisle_max: Celsius::new(obs.cold_aisle_max_true),
            acu_power_kw: Kilowatts::new(obs.acu_power_kw),
            avg_server_power_kw: Kilowatts::new(obs.avg_server_power_kw),
            observation: obs,
        })
    }

    /// Seals the episode into its [`EvalResult`].
    pub fn finish(self, controller_name: &str, supervisor: &Supervisor) -> EvalResult {
        EvalResult {
            controller: controller_name.to_string(),
            setting: self.config.setting,
            cooling_energy_kwh: self.cooling_energy_kwh,
            tsv_percent: 100.0 * self.violations as f64 / self.config.minutes.max(1) as f64,
            ci_percent: 100.0 * self.interrupted / self.config.minutes.max(1) as f64,
            setpoints: self.setpoints,
            inlet_avg: self.inlet_avg,
            cold_aisle_max: self.cold_aisle_max,
            acu_power: self.acu_power,
            avg_server_power: self.avg_server_power,
            server_energy_kwh: self.server_energy_kwh,
            trace: self.trace,
            // Retention may have dropped samples from before (and after)
            // the metering mark; shift the index by the post-mark drops
            // so it still points at the first metered sample remaining.
            metered_from: self
                .metered_from
                .saturating_sub(self.dropped_total - self.dropped_at_metering),
            safe_mode_minutes: supervisor.safe_mode_minutes(),
        }
    }
}
