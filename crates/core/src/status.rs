//! Shared control-plane status surface for network serving.
//!
//! The supervisor runs on the control thread; the network service
//! (`tesla-net`) answers `STATUS`/`SETPOINT` requests from reactor
//! threads. The [`StatusBoard`] is the seam between them: the
//! supervisor *publishes* a [`StatusSnapshot`] at each minute boundary
//! (one small struct copy under a mutex), and any number of readers
//! *snapshot* it without touching supervisor internals or blocking the
//! control loop.
//!
//! The snapshot is deliberately a value type — a reader gets a
//! consistent minute-aligned view, never a torn one, and holding it
//! costs the control loop nothing. Until the first publish the board is
//! empty and readers get `None` (the network layer maps that to
//! `ERR 404 status-unavailable`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

use tesla_units::{Celsius, ZoneId};

use crate::supervisor::{Rung, Supervisor};

/// A minute-aligned copy of the supervisor's externally useful state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatusSnapshot {
    /// Episode minute the snapshot was taken at.
    pub minute: u64,
    /// Degradation-ladder rung at the end of that minute.
    pub rung: Rung,
    /// Set-point actually executed that minute.
    pub setpoint: Celsius,
    /// Hottest cold-aisle inlet observed that minute (may be
    /// `-inf` when the minute carried no thermal observation).
    pub cold_aisle_max: Celsius,
    /// Minutes spent at `SafeMode` so far.
    pub safe_mode_minutes: u64,
    /// Minutes spent at `HoldLastSafe` so far.
    pub hold_minutes: u64,
    /// Soft-watchdog trips so far.
    pub watchdog_trips: u64,
    /// Register writes failed after all retries.
    pub write_failures: u64,
    /// Decisions discarded for overrunning the hard step deadline.
    pub decision_timeouts: u64,
    /// Transition-log entries dropped by the ring cap.
    pub events_dropped: u64,
}

impl StatusSnapshot {
    /// Captures the supervisor's current counters as of `minute`, with
    /// the thermals/set-point the caller just fed to `end_of_minute`.
    pub fn capture(
        sup: &Supervisor,
        minute: u64,
        executed_setpoint: Celsius,
        cold_aisle_max: Celsius,
    ) -> Self {
        StatusSnapshot {
            minute,
            rung: sup.rung(),
            setpoint: executed_setpoint,
            cold_aisle_max,
            safe_mode_minutes: sup.safe_mode_minutes(),
            hold_minutes: sup.hold_minutes(),
            watchdog_trips: sup.watchdog_trips(),
            write_failures: sup.write_failures(),
            decision_timeouts: sup.decision_timeouts(),
            events_dropped: sup.events_dropped(),
        }
    }

    /// Renders the snapshot as a single-line JSON object (the `STATUS`
    /// response body in `docs/SERVICE.md`). Non-finite temperatures
    /// render as `null` — JSON has no infinities.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"minute\":{},\"rung\":\"{}\",\"rung_index\":{}",
            self.minute,
            self.rung.label(),
            self.rung.index()
        ));
        out.push_str(&format!(",\"setpoint_c\":{}", json_f64(self.setpoint)));
        out.push_str(&format!(
            ",\"cold_aisle_max_c\":{}",
            json_f64(self.cold_aisle_max)
        ));
        out.push_str(&format!(
            ",\"safe_mode_minutes\":{},\"hold_minutes\":{},\"watchdog_trips\":{},\
             \"write_failures\":{},\"decision_timeouts\":{},\"events_dropped\":{}}}",
            self.safe_mode_minutes,
            self.hold_minutes,
            self.watchdog_trips,
            self.write_failures,
            self.decision_timeouts,
            self.events_dropped
        ));
        out
    }
}

/// Renders a temperature as a JSON number, or `null` when non-finite.
fn json_f64(t: Celsius) -> String {
    if t.value().is_finite() {
        format!("{}", t.value())
    } else {
        "null".to_string()
    }
}

/// Single-writer, many-reader mailbox for the latest [`StatusSnapshot`].
#[derive(Debug, Default)]
pub struct StatusBoard {
    latest: Mutex<Option<StatusSnapshot>>,
}

impl StatusBoard {
    /// An empty board (readers see `None` until the first publish).
    pub fn new() -> Self {
        StatusBoard::default()
    }

    /// Replaces the published snapshot.
    pub fn publish(&self, snapshot: StatusSnapshot) {
        let mut slot = match self.latest.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *slot = Some(snapshot);
    }

    /// The most recently published snapshot, if any.
    pub fn snapshot(&self) -> Option<StatusSnapshot> {
        let slot = match self.latest.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *slot
    }
}

/// Zone-addressable status surface for fleet serving.
///
/// A fleet runs one [`StatusBoard`] per zone; the network service needs
/// to resolve `STATUS z7` to zone 7's board without knowing anything
/// about the fleet. The registry is that lookup: zone boards register
/// under their [`ZoneId`], and one distinguished *site* board answers
/// the zone-less `STATUS` exactly like the single-zone deployment did —
/// a single-zone service is just a registry with nothing registered.
#[derive(Debug, Default)]
pub struct ZoneStatusRegistry {
    site: Arc<StatusBoard>,
    zones: RwLock<BTreeMap<ZoneId, Arc<StatusBoard>>>,
}

impl ZoneStatusRegistry {
    /// An empty registry with a fresh site board.
    pub fn new() -> Self {
        ZoneStatusRegistry::default()
    }

    /// A registry fronting an existing board as the site board (the
    /// single-zone compatibility path).
    pub fn with_site(site: Arc<StatusBoard>) -> Self {
        ZoneStatusRegistry {
            site,
            zones: RwLock::new(BTreeMap::new()),
        }
    }

    /// The site-level board (the zone-less `STATUS`/`SETPOINT` target).
    pub fn site(&self) -> Arc<StatusBoard> {
        Arc::clone(&self.site)
    }

    /// Registers (or replaces) `zone`'s board.
    pub fn register(&self, zone: ZoneId, board: Arc<StatusBoard>) {
        let mut zones = match self.zones.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        zones.insert(zone, board);
    }

    /// Resolves a board: `None` addresses the site board, `Some(zone)`
    /// that zone's board (absent when the zone never registered).
    pub fn resolve(&self, zone: Option<ZoneId>) -> Option<Arc<StatusBoard>> {
        match zone {
            None => Some(self.site()),
            Some(z) => {
                let zones = match self.zones.read() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                zones.get(&z).cloned()
            }
        }
    }

    /// The registered zones, ascending.
    pub fn zones(&self) -> Vec<ZoneId> {
        let zones = match self.zones.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        zones.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board_reads_none() {
        assert_eq!(StatusBoard::new().snapshot(), None);
    }

    #[test]
    fn registry_resolves_site_and_zones() {
        let registry = ZoneStatusRegistry::new();
        assert!(registry.resolve(None).is_some(), "site board always exists");
        assert!(registry.resolve(Some(ZoneId::new(3))).is_none());

        let z3 = Arc::new(StatusBoard::new());
        registry.register(ZoneId::new(3), Arc::clone(&z3));
        let snap = StatusSnapshot {
            minute: 1,
            rung: Rung::Normal,
            setpoint: Celsius::new(24.0),
            cold_aisle_max: Celsius::new(20.0),
            safe_mode_minutes: 0,
            hold_minutes: 0,
            watchdog_trips: 0,
            write_failures: 0,
            decision_timeouts: 0,
            events_dropped: 0,
        };
        z3.publish(snap);
        let resolved = registry.resolve(Some(ZoneId::new(3))).unwrap();
        assert_eq!(resolved.snapshot(), Some(snap));
        assert_eq!(registry.zones(), vec![ZoneId::new(3)]);

        // The site board is independent of every zone board.
        assert_eq!(registry.resolve(None).unwrap().snapshot(), None);
    }

    #[test]
    fn publish_then_snapshot_round_trips() {
        let board = StatusBoard::new();
        let snap = StatusSnapshot {
            minute: 7,
            rung: Rung::HoldLastSafe,
            setpoint: Celsius::new(22.5),
            cold_aisle_max: Celsius::new(26.25),
            safe_mode_minutes: 1,
            hold_minutes: 2,
            watchdog_trips: 3,
            write_failures: 4,
            decision_timeouts: 5,
            events_dropped: 6,
        };
        board.publish(snap);
        assert_eq!(board.snapshot(), Some(snap));
    }

    #[test]
    fn json_renders_counters_and_null_thermals() {
        let snap = StatusSnapshot {
            minute: 0,
            rung: Rung::Normal,
            setpoint: Celsius::new(23.0),
            cold_aisle_max: Celsius::new(f64::NEG_INFINITY),
            safe_mode_minutes: 0,
            hold_minutes: 0,
            watchdog_trips: 0,
            write_failures: 0,
            decision_timeouts: 0,
            events_dropped: 0,
        };
        let json = snap.to_json();
        assert!(json.contains("\"rung\":\"Normal\""), "{json}");
        assert!(json.contains("\"setpoint_c\":23"), "{json}");
        assert!(json.contains("\"cold_aisle_max_c\":null"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
