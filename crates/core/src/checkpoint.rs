//! Versioned, CRC-framed control-plane checkpoints.
//!
//! A checkpoint captures everything the control plane needs to resume a
//! supervised episode bit-identically after a crash: the episode
//! fingerprint (seed, length, warm-up, controller name), the executed
//! set-point prefix, the supervisor's full ladder state, and the
//! controller's opaque decision state. Files use the same framing
//! discipline as the historian WAL — a magic tag, a version, an explicit
//! length, and a CRC32 over the payload — so a torn or foreign file is
//! *detected*, never mis-parsed.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! ┌──────────┬─────────┬─────────┬───────┬────────────────┐
//! │ TSLACKPT │ version │ len u32 │ crc32 │ payload (len B) │
//! │  8 bytes │   u16   │         │  u32  │                 │
//! └──────────┴─────────┴─────────┴───────┴────────────────┘
//! ```
//!
//! Writes are atomic: the frame is written and fsynced to a dot-prefixed
//! temp file in the same directory, then renamed into place. A crash
//! mid-write therefore leaves either the previous file set untouched or
//! an ignorable temp file — never a half-written checkpoint under the
//! real name. [`CheckpointStore::latest_valid`] scans newest-first and
//! skips anything torn, corrupt, or written by a future version, falling
//! back to the next older file.
//!
//! All raw byte-level deserialization in this crate is confined to the
//! CRC-checked [`ByteReader`] here — the `no-unframed-checkpoint-read`
//! lint (`cargo xtask lint`) enforces that nothing else in `tesla-core`
//! parses checkpoint bytes ad hoc.

// analysis:allow-file(panic-free-control-path): encode/decode
// fail-fast on violated framing invariants is deliberate — a torn
// checkpoint must never be silently applied.
use crate::supervisor::{Rung, StressReason, SupervisorEvent, SupervisorState};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use tesla_historian::wal::crc32;
use tesla_units::Celsius;

/// Magic tag opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TSLACKPT";
/// Current format version. Readers reject anything newer.
pub const CHECKPOINT_VERSION: u16 = 1;
/// Frame header size: magic + version + payload length + CRC.
const HEADER_LEN: usize = 8 + 2 + 4 + 4;

/// Why a checkpoint could not be read.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file is shorter than its frame claims, the magic tag is
    /// missing, or the CRC does not match: a torn write or foreign file.
    Torn,
    /// The file was written by a newer format version than this reader
    /// understands.
    FutureVersion(u16),
    /// The frame is intact (magic, length, and CRC all check out) but the
    /// payload violates a structural invariant — e.g. a non-finite
    /// set-point or an unknown rung code.
    Corrupt(String),
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Torn => write!(f, "torn or foreign checkpoint frame"),
            CheckpointError::FutureVersion(v) => {
                write!(
                    f,
                    "checkpoint version {v} is newer than supported ({CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint payload: {why}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Little-endian append-only byte sink for checkpoint payloads.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian cursor over a CRC-verified payload. Every read
/// is bounds-checked; `None` means the payload ended early.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]])) // lint:allow(no-unframed-checkpoint-read): the CRC-checked reader itself
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]])) // lint:allow(no-unframed-checkpoint-read): the CRC-checked reader itself
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b)) // lint:allow(no-unframed-checkpoint-read): the CRC-checked reader itself
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// A `u32`-length-prefixed byte run.
    pub(crate) fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// A resumable snapshot of the control plane at a metered-minute cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Episode seed (fingerprint: a resume refuses a mismatched seed).
    pub seed: u64,
    /// Metered episode length in minutes (fingerprint).
    pub minutes: u64,
    /// Warm-up minutes before metering starts (fingerprint).
    pub warmup_minutes: u64,
    /// Name of the controller the state belongs to (fingerprint).
    pub controller: String,
    /// Metered minutes completed — the resume point.
    pub cursor: u64,
    /// Executed set-points for minutes `0..cursor`, replayed verbatim
    /// against the rebuilt plant on resume.
    // lint:allow(no-raw-f64-in-public-api): serialized codec field; newtypes would change the wire format
    pub setpoints: Vec<f64>,
    /// Full supervisor ladder state at the cursor.
    pub supervisor: SupervisorState,
    /// Opaque controller decision state ([`crate::Controller::save_state`]).
    pub controller_state: Option<Vec<u8>>,
}

/// Sentinel for "no reason" in the optional `StressReason` slots.
const NO_REASON: u8 = 0xFF;

impl Checkpoint {
    /// True when this checkpoint belongs to the given episode identity.
    pub fn matches(&self, seed: u64, minutes: u64, warmup_minutes: u64, controller: &str) -> bool {
        self.seed == seed
            && self.minutes == minutes
            && self.warmup_minutes == warmup_minutes
            && self.controller == controller
    }

    /// Serializes the checkpoint into a self-describing CRC-framed file
    /// image.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.seed);
        w.u64(self.minutes);
        w.u64(self.warmup_minutes);
        w.bytes(self.controller.as_bytes());
        w.u64(self.cursor);
        w.u32(self.setpoints.len() as u32);
        for &sp in &self.setpoints {
            w.f64(sp);
        }
        encode_supervisor(&mut w, &self.supervisor);
        match &self.controller_state {
            Some(bytes) => {
                w.u8(1);
                w.bytes(bytes);
            }
            None => w.u8(0),
        }
        let payload = w.into_vec();

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a file image produced by [`Checkpoint::encode`], verifying
    /// magic, version, length, and CRC before touching the payload.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8).ok_or(CheckpointError::Torn)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::Torn);
        }
        let version = r.u16().ok_or(CheckpointError::Torn)?;
        if version > CHECKPOINT_VERSION {
            return Err(CheckpointError::FutureVersion(version));
        }
        let len = r.u32().ok_or(CheckpointError::Torn)? as usize;
        let crc = r.u32().ok_or(CheckpointError::Torn)?;
        if r.remaining() != len {
            return Err(CheckpointError::Torn);
        }
        let payload = r.take(len).ok_or(CheckpointError::Torn)?;
        if crc32(payload) != crc {
            return Err(CheckpointError::Torn);
        }
        Self::decode_payload(payload)
    }

    fn decode_payload(payload: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let corrupt = |why: &str| CheckpointError::Corrupt(why.to_string());
        let mut r = ByteReader::new(payload);
        let seed = r.u64().ok_or_else(|| corrupt("seed"))?;
        let minutes = r.u64().ok_or_else(|| corrupt("minutes"))?;
        let warmup_minutes = r.u64().ok_or_else(|| corrupt("warmup"))?;
        let controller = String::from_utf8(
            r.bytes()
                .ok_or_else(|| corrupt("controller name"))?
                .to_vec(),
        )
        .map_err(|_| corrupt("controller name not utf-8"))?;
        let cursor = r.u64().ok_or_else(|| corrupt("cursor"))?;

        let n_sp = r.u32().ok_or_else(|| corrupt("setpoint count"))? as usize;
        if n_sp * 8 > r.remaining() {
            return Err(corrupt("setpoint count exceeds payload"));
        }
        if n_sp as u64 != cursor {
            return Err(corrupt("setpoint prefix length disagrees with cursor"));
        }
        let mut setpoints = Vec::with_capacity(n_sp);
        for _ in 0..n_sp {
            let sp = r.f64().ok_or_else(|| corrupt("setpoint"))?;
            if !sp.is_finite() {
                return Err(corrupt("non-finite set-point"));
            }
            setpoints.push(sp);
        }
        let supervisor = decode_supervisor(&mut r)?;
        let controller_state = match r.u8().ok_or_else(|| corrupt("controller-state flag"))? {
            0 => None,
            1 => Some(
                r.bytes()
                    .ok_or_else(|| corrupt("controller state"))?
                    .to_vec(),
            ),
            _ => return Err(corrupt("controller-state flag")),
        };
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after payload"));
        }
        Ok(Checkpoint {
            seed,
            minutes,
            warmup_minutes,
            controller,
            cursor,
            setpoints,
            supervisor,
            controller_state,
        })
    }
}

fn encode_reason(w: &mut ByteWriter, reason: Option<StressReason>) {
    w.u8(reason.map_or(NO_REASON, StressReason::code));
}

fn decode_reason(code: u8) -> Result<Option<StressReason>, CheckpointError> {
    if code == NO_REASON {
        return Ok(None);
    }
    StressReason::from_code(code)
        .map(Some)
        .ok_or_else(|| CheckpointError::Corrupt(format!("unknown stress-reason code {code}")))
}

fn encode_supervisor(w: &mut ByteWriter, s: &SupervisorState) {
    w.u8(s.rung.index());
    w.u32(s.stress_streak);
    w.u32(s.clean_streak);
    encode_reason(w, s.pending_reason);
    encode_reason(w, s.elevated_reason);
    w.f64(s.last_safe_setpoint.value());
    match s.last_executed {
        Some(c) => {
            w.u8(1);
            w.f64(c.value());
        }
        None => w.u8(0),
    }
    w.u32(s.events.len() as u32);
    for e in &s.events {
        w.u64(e.minute as u64);
        w.u8(e.from.index());
        w.u8(e.to.index());
        w.u8(e.reason.code());
    }
    w.u64(s.events_dropped);
    w.u64(s.safe_mode_minutes);
    w.u64(s.hold_minutes);
    w.u64(s.watchdog_trips);
    w.u64(s.write_failures);
    w.u64(s.write_retries);
    w.u64(s.decision_timeouts);
}

fn decode_supervisor(r: &mut ByteReader<'_>) -> Result<SupervisorState, CheckpointError> {
    let corrupt = |why: &str| CheckpointError::Corrupt(why.to_string());
    let rung_of = |code: u8| {
        Rung::from_index(code)
            .ok_or_else(|| CheckpointError::Corrupt(format!("unknown rung index {code}")))
    };
    let rung = rung_of(r.u8().ok_or_else(|| corrupt("rung"))?)?;
    let stress_streak = r.u32().ok_or_else(|| corrupt("stress streak"))?;
    let clean_streak = r.u32().ok_or_else(|| corrupt("clean streak"))?;
    let pending_reason = decode_reason(r.u8().ok_or_else(|| corrupt("pending reason"))?)?;
    let elevated_reason = decode_reason(r.u8().ok_or_else(|| corrupt("elevated reason"))?)?;
    let last_safe = r.f64().ok_or_else(|| corrupt("last safe set-point"))?;
    if !last_safe.is_finite() {
        return Err(corrupt("non-finite last safe set-point"));
    }
    let last_executed = match r.u8().ok_or_else(|| corrupt("last-executed flag"))? {
        0 => None,
        1 => {
            let v = r.f64().ok_or_else(|| corrupt("last executed"))?;
            if !v.is_finite() {
                return Err(corrupt("non-finite last executed set-point"));
            }
            Some(Celsius::new(v))
        }
        _ => return Err(corrupt("last-executed flag")),
    };
    let n_events = r.u32().ok_or_else(|| corrupt("event count"))? as usize;
    if n_events * 11 > r.remaining() {
        return Err(corrupt("event count exceeds payload"));
    }
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let minute = r.u64().ok_or_else(|| corrupt("event minute"))? as usize;
        let from = rung_of(r.u8().ok_or_else(|| corrupt("event from-rung"))?)?;
        let to = rung_of(r.u8().ok_or_else(|| corrupt("event to-rung"))?)?;
        let reason = decode_reason(r.u8().ok_or_else(|| corrupt("event reason"))?)?
            .ok_or_else(|| corrupt("event reason missing"))?;
        events.push(SupervisorEvent {
            minute,
            from,
            to,
            reason,
        });
    }
    Ok(SupervisorState {
        rung,
        stress_streak,
        clean_streak,
        pending_reason,
        elevated_reason,
        last_safe_setpoint: Celsius::new(last_safe),
        last_executed,
        events,
        events_dropped: r.u64().ok_or_else(|| corrupt("events dropped"))?,
        safe_mode_minutes: r.u64().ok_or_else(|| corrupt("safe-mode minutes"))?,
        hold_minutes: r.u64().ok_or_else(|| corrupt("hold minutes"))?,
        watchdog_trips: r.u64().ok_or_else(|| corrupt("watchdog trips"))?,
        write_failures: r.u64().ok_or_else(|| corrupt("write failures"))?,
        write_retries: r.u64().ok_or_else(|| corrupt("write retries"))?,
        decision_timeouts: r.u64().ok_or_else(|| corrupt("decision timeouts"))?,
    })
}

/// A directory of numbered checkpoint files with atomic writes, keep-N
/// retention, and newest-first recovery.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory keeping the
    /// newest `keep` files (minimum 1).
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(cursor: u64) -> String {
        format!("ckpt-{cursor:010}.bin")
    }

    /// Atomically persists a checkpoint: encode → temp file → fsync →
    /// rename, with jittered-backoff retries on transient I/O errors,
    /// then prunes beyond the retention limit. Returns the final path.
    pub fn write(&self, ckpt: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        let _timer = tesla_obs::Timer::start(tesla_obs::histogram!("checkpoint_write_seconds"));
        let bytes = ckpt.encode();
        tesla_obs::gauge!("checkpoint_size_bytes").set(bytes.len() as f64);
        let final_path = self.dir.join(Self::file_name(ckpt.cursor));
        let tmp = self.dir.join(format!(".ckpt-{:010}.tmp", ckpt.cursor));
        let policy = tesla_backoff::BackoffPolicy {
            base_ms: 1,
            factor: 2,
            max_delay_ms: 64,
            max_attempts: 3,
            jitter: 0.25,
            seed: 0xC4B7 ^ ckpt.cursor,
        };
        policy.run(
            |_| {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&bytes)?;
                f.sync_all()?;
                fs::rename(&tmp, &final_path)
            },
            |_| true,
            |_| tesla_obs::counter!("checkpoint_write_retries_total").inc(),
        )?;
        tesla_obs::counter!("checkpoint_writes_total").inc();
        self.prune();
        Ok(final_path)
    }

    /// Checkpoint files present, oldest first. Temp files and foreign
    /// names are ignored.
    pub fn list(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt-") && name.ends_with(".bin") {
                out.push(entry.path());
            }
        }
        // Zero-padded cursors make lexicographic order chronological.
        out.sort();
        Ok(out)
    }

    /// The newest checkpoint that decodes cleanly, or `None` when every
    /// candidate is torn, corrupt, future-versioned, or absent. Invalid
    /// files are skipped (and counted), not deleted — they stay for
    /// post-mortems.
    pub fn latest_valid(&self) -> Result<Option<(Checkpoint, PathBuf)>, CheckpointError> {
        let _timer = tesla_obs::Timer::start(tesla_obs::histogram!("checkpoint_restore_seconds"));
        for path in self.list()?.into_iter().rev() {
            match fs::read(&path)
                .map_err(CheckpointError::Io)
                .and_then(|b| Checkpoint::decode(&b))
            {
                Ok(ckpt) => {
                    tesla_obs::counter!("checkpoint_restores_total").inc();
                    return Ok(Some((ckpt, path)));
                }
                Err(e) => {
                    tesla_obs::counter!("checkpoint_corrupt_total").inc();
                    tesla_obs::event(
                        "checkpoint_invalid",
                        &[("kind", matches!(e, CheckpointError::Torn) as u8 as f64)],
                    );
                }
            }
        }
        Ok(None)
    }

    /// Drops the oldest files beyond the retention limit. Best-effort:
    /// a failed unlink only means an extra file lingers.
    fn prune(&self) {
        if let Ok(files) = self.list() {
            if files.len() > self.keep {
                let excess = files.len() - self.keep;
                for path in &files[..excess] {
                    let _ = fs::remove_file(path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> SupervisorState {
        SupervisorState {
            rung: Rung::HoldLastSafe,
            stress_streak: 2,
            clean_streak: 0,
            pending_reason: Some(StressReason::WriteFailed),
            elevated_reason: Some(StressReason::Watchdog),
            last_safe_setpoint: Celsius::new(24.5),
            last_executed: Some(Celsius::new(24.25)),
            events: vec![SupervisorEvent {
                minute: 17,
                from: Rung::Normal,
                to: Rung::HoldLastSafe,
                reason: StressReason::Watchdog,
            }],
            events_dropped: 3,
            safe_mode_minutes: 0,
            hold_minutes: 5,
            watchdog_trips: 1,
            write_failures: 2,
            write_retries: 7,
            decision_timeouts: 1,
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            seed: 42,
            minutes: 240,
            warmup_minutes: 30,
            controller: "tesla".to_string(),
            cursor: 3,
            setpoints: vec![23.0, 23.5, 24.0],
            supervisor: sample_state(),
            controller_state: Some(vec![9, 8, 7, 6]),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let ckpt = sample_checkpoint();
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn roundtrip_without_controller_state() {
        let ckpt = Checkpoint {
            controller_state: None,
            ..sample_checkpoint()
        };
        assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_checkpoint().encode();
        bytes[8..10].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::FutureVersion(v)) if v == CHECKPOINT_VERSION + 1
        ));
    }

    #[test]
    fn bad_magic_is_torn() {
        let mut bytes = sample_checkpoint().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Torn)
        ));
    }

    #[test]
    fn flipped_payload_byte_is_torn() {
        let mut bytes = sample_checkpoint().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Torn)
        ));
    }

    #[test]
    fn truncation_at_every_offset_errors_cleanly() {
        let bytes = sample_checkpoint().encode();
        for cut in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..cut]);
            assert!(err.is_err(), "truncated at {cut} must not decode");
        }
    }

    #[test]
    fn nan_setpoint_is_corrupt() {
        let ckpt = Checkpoint {
            setpoints: vec![23.0, f64::NAN, 24.0],
            ..sample_checkpoint()
        };
        assert!(matches!(
            Checkpoint::decode(&ckpt.encode()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn cursor_setpoint_mismatch_is_corrupt() {
        let ckpt = Checkpoint {
            cursor: 5,
            ..sample_checkpoint()
        };
        assert!(matches!(
            Checkpoint::decode(&ckpt.encode()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn store_write_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tesla-ckpt-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 3).unwrap();
        let ckpt = sample_checkpoint();
        let path = store.write(&ckpt).unwrap();
        assert!(path.exists());
        let (loaded, from) = store.latest_valid().unwrap().unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(from, path);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_prunes_to_keep() {
        let dir = std::env::temp_dir().join(format!("tesla-ckpt-prune-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 2).unwrap();
        for cursor in 1..=5u64 {
            let ckpt = Checkpoint {
                cursor,
                setpoints: vec![23.0; cursor as usize],
                ..sample_checkpoint()
            };
            store.write(&ckpt).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2);
        let (latest, _) = store.latest_valid().unwrap().unwrap();
        assert_eq!(latest.cursor, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_newest_falls_back_to_previous_valid() {
        let dir = std::env::temp_dir().join(format!("tesla-ckpt-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 4).unwrap();
        let good = Checkpoint {
            cursor: 1,
            setpoints: vec![23.0],
            ..sample_checkpoint()
        };
        store.write(&good).unwrap();
        let newer = Checkpoint {
            cursor: 2,
            setpoints: vec![23.0, 24.0],
            ..sample_checkpoint()
        };
        let full = newer.encode();
        // Simulate a torn write at every truncation point of the newer
        // file: recovery must always land on the older valid checkpoint.
        for cut in 0..full.len() {
            fs::write(dir.join(CheckpointStore::file_name(2)), &full[..cut]).unwrap();
            let (loaded, _) = store.latest_valid().unwrap().unwrap();
            assert_eq!(loaded.cursor, 1, "cut at {cut} must fall back");
        }
        // And the intact file wins again.
        fs::write(dir.join(CheckpointStore::file_name(2)), &full).unwrap();
        assert_eq!(store.latest_valid().unwrap().unwrap().0.cursor, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_yields_none() {
        let dir = std::env::temp_dir().join(format!("tesla-ckpt-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(store.latest_valid().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_matching() {
        let ckpt = sample_checkpoint();
        assert!(ckpt.matches(42, 240, 30, "tesla"));
        assert!(!ckpt.matches(43, 240, 30, "tesla"));
        assert!(!ckpt.matches(42, 240, 30, "fixed"));
    }
}
