//! Supervised execution: watchdog, retrying writes, degradation ladder.
//!
//! §3.3 gives TESLA a single backup strategy (fall back to `S_min` when
//! no candidate is feasible). A deployment needs more: the decision
//! process can hang, the Modbus write can time out, the telemetry can
//! rot. [`Supervisor`] wraps any [`Controller`] with:
//!
//! * a **decision watchdog** — a wall-clock budget per decision; an
//!   over-budget decision is discarded in favour of the last safe
//!   set-point;
//! * **retrying set-point writes** — transient Modbus failures are
//!   retried with exponential backoff before being declared failed;
//! * a three-rung **degradation ladder** with hysteresis:
//!
//!   | rung | behaviour |
//!   |------|-----------|
//!   | `Normal` | execute the controller's decisions |
//!   | `HoldLastSafe` | ignore the controller; hold the last set-point executed while healthy |
//!   | `SafeMode` | command `S_min` (maximum cooling) |
//!
//!   Stress (watchdog trips, failed writes, quarantined telemetry,
//!   observed thermal violations) must persist for `escalate_after`
//!   consecutive minutes to climb a rung; recovery requires
//!   `recover_after` consecutive clean minutes to descend one. The
//!   asymmetry (`recover_after > escalate_after`) is the hysteresis that
//!   prevents rung oscillation at a stress threshold.
//!
//! Two refinements keep recovery itself from destabilizing the loop.
//! Descending from `SafeMode`, the hold rung *ramps* the set-point back
//! up at `recovery_slew_c_per_min` instead of snapping to `last_safe`
//! (the room sits far below it after a safe-mode excursion; a step
//! overshoots the thermal limit and re-escalates — a limit cycle).
//! Downward moves — and safe mode itself — are never slewed: cooling
//! harder is always safe. And an *observed* thermal violation pulls
//! `last_safe` below the set-point that just proved unsafe
//! (`violation_backoff_c`), so the ladder never re-holds a stale value
//! the current load has outgrown.
//!
//! Every transition is logged with its minute and dominant reason, and
//! the log is queryable after the episode.

use crate::controller::Controller;
use crate::engine::ZoneEpisode;
use crate::experiment::{EpisodeConfig, EvalResult};
use crate::CoreError;
use std::time::{Duration, Instant};
use tesla_forecast::Trace;
use tesla_sim::{CoolingPlant, SimError, Testbed};
use tesla_units::{Celsius, DegC, NOMINAL_SETPOINT, SETPOINT_RANGE};

/// The degradation ladder's rungs, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Execute the wrapped controller's decisions.
    Normal,
    /// Hold the last set-point that was executed while healthy.
    HoldLastSafe,
    /// Command the safe-mode set-point (`S_min`, maximum cooling).
    SafeMode,
}

impl Rung {
    /// Metric-label spelling of the rung, matching the event log's
    /// `Debug` names (`supervisor_rung_transitions_total{to="SafeMode"}`).
    pub fn label(self) -> &'static str {
        match self {
            Rung::Normal => "Normal",
            Rung::HoldLastSafe => "HoldLastSafe",
            Rung::SafeMode => "SafeMode",
        }
    }

    /// Ladder position as a number (0 = Normal, 2 = SafeMode) for the
    /// `supervisor_rung_index` gauge.
    pub fn index(self) -> u8 {
        match self {
            Rung::Normal => 0,
            Rung::HoldLastSafe => 1,
            Rung::SafeMode => 2,
        }
    }

    fn escalated(self) -> Rung {
        match self {
            Rung::Normal => Rung::HoldLastSafe,
            Rung::HoldLastSafe | Rung::SafeMode => Rung::SafeMode,
        }
    }

    fn recovered(self) -> Rung {
        match self {
            Rung::SafeMode => Rung::HoldLastSafe,
            Rung::HoldLastSafe | Rung::Normal => Rung::Normal,
        }
    }

    /// Inverse of [`Rung::index`] (for the checkpoint codec).
    pub fn from_index(index: u8) -> Option<Rung> {
        match index {
            0 => Some(Rung::Normal),
            1 => Some(Rung::HoldLastSafe),
            2 => Some(Rung::SafeMode),
            _ => None,
        }
    }
}

/// Why the supervisor considered a minute stressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressReason {
    /// The controller blew its decision budget.
    Watchdog,
    /// The set-point write failed after all retries.
    WriteFailed,
    /// Too much telemetry is quarantined.
    Telemetry,
    /// A cold-aisle sensor (sanitized) read above the limit.
    ThermalViolation,
    /// The decision process died entirely (threaded runtime).
    ConsumerLost,
    /// The decision overran the hard step deadline and was discarded.
    DecisionTimeout,
}

impl StressReason {
    /// Metric-label spelling of the reason.
    pub fn label(self) -> &'static str {
        match self {
            StressReason::Watchdog => "Watchdog",
            StressReason::WriteFailed => "WriteFailed",
            StressReason::Telemetry => "Telemetry",
            StressReason::ThermalViolation => "ThermalViolation",
            StressReason::ConsumerLost => "ConsumerLost",
            StressReason::DecisionTimeout => "DecisionTimeout",
        }
    }

    /// Stable wire code for the checkpoint codec.
    pub fn code(self) -> u8 {
        match self {
            StressReason::Watchdog => 0,
            StressReason::WriteFailed => 1,
            StressReason::Telemetry => 2,
            StressReason::ThermalViolation => 3,
            StressReason::ConsumerLost => 4,
            StressReason::DecisionTimeout => 5,
        }
    }

    /// Inverse of [`StressReason::code`].
    pub fn from_code(code: u8) -> Option<StressReason> {
        match code {
            0 => Some(StressReason::Watchdog),
            1 => Some(StressReason::WriteFailed),
            2 => Some(StressReason::Telemetry),
            3 => Some(StressReason::ThermalViolation),
            4 => Some(StressReason::ConsumerLost),
            5 => Some(StressReason::DecisionTimeout),
            _ => None,
        }
    }
}

/// Records one ladder transition into the global registry and trace.
fn record_transition(event: &SupervisorEvent) {
    tesla_obs::global()
        .counter(
            "supervisor_rung_transitions_total",
            &[
                ("from", event.from.label()),
                ("to", event.to.label()),
                ("reason", event.reason.label()),
            ],
        )
        .inc();
    tesla_obs::gauge!("supervisor_rung_index").set(event.to.index() as f64);
    tesla_obs::event(
        "supervisor_transition",
        &[
            ("minute", event.minute as f64),
            ("from", event.from.index() as f64),
            ("to", event.to.index() as f64),
        ],
    );
}

/// One ladder transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Metered minute index the transition happened at.
    pub minute: usize,
    /// Rung before.
    pub from: Rung,
    /// Rung after.
    pub to: Rung,
    /// Dominant stress reason (recovery transitions carry the reason
    /// that originally caused the climb).
    pub reason: StressReason,
}

/// Supervisor thresholds and budgets.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget per decision, milliseconds. A decision over the
    /// budget is *used* but counts as stress (the soft watchdog).
    pub decision_budget_ms: u64,
    /// Hard per-step deadline, milliseconds. A decision over the deadline
    /// is *discarded*: the supervisor logs a `DecisionTimeout`, falls back
    /// to the previous safe set-point (one rung of the ladder), and lets
    /// the stress streak escalate from there. `None` disables.
    pub step_deadline_ms: Option<u64>,
    /// Set-point write attempts per minute before declaring failure.
    pub max_write_attempts: u32,
    /// Base backoff between write retries, milliseconds (doubles per
    /// attempt).
    pub retry_backoff_ms: u64,
    /// Fraction of each retry delay shaved off by the deterministic
    /// jitter (see [`tesla_backoff::BackoffPolicy::jitter`]).
    pub retry_jitter: f64,
    /// Transition-log capacity: beyond this many events the oldest are
    /// dropped (and `supervisor_events_dropped_total` counts them), so a
    /// week-long episode with flapping faults cannot grow memory
    /// unboundedly.
    pub max_events: usize,
    /// Consecutive stressed minutes before climbing one rung.
    pub escalate_after: u32,
    /// Consecutive clean minutes before descending one rung.
    pub recover_after: u32,
    /// Quarantined fraction of cold-aisle telemetry counting as stress.
    pub quarantine_stress_frac: f64,
    /// Safe-mode set-point (`S_min`).
    pub safe_setpoint: Celsius,
    /// Cold-aisle limit whose violation counts as stress.
    pub d_allowed: Celsius,
    /// Maximum *upward* set-point movement per minute while at
    /// `HoldLastSafe`, °C. After a safe-mode excursion the room can sit
    /// far below the hold target; snapping back in one step overshoots
    /// the thermal limit and re-escalates (a limit cycle). Downward moves
    /// are never limited — cooling harder is always safe.
    pub recovery_slew_c_per_min: DegC,
    /// How far below the executed set-point `last_safe` is pulled when a
    /// thermal violation is observed, °C. A violation proves the executed
    /// value unsafe at the current load, so holding it again would just
    /// repeat the violation.
    pub violation_backoff_c: DegC,
    /// Early-warning band below `d_allowed`, °C. An observed cold-aisle
    /// max inside the band already triggers the `last_safe` backoff —
    /// but not the stress signal — so a recovery ramp turns around
    /// *before* the thermal lag carries the room across the limit.
    pub thermal_warn_margin_c: DegC,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            decision_budget_ms: 5_000,
            step_deadline_ms: Some(30_000),
            max_write_attempts: 4,
            retry_backoff_ms: 1,
            retry_jitter: 0.25,
            max_events: 1_024,
            escalate_after: 3,
            recover_after: 10,
            quarantine_stress_frac: 0.25,
            safe_setpoint: SETPOINT_RANGE.min(),
            d_allowed: Celsius::new(22.0),
            recovery_slew_c_per_min: DegC::new(0.25),
            violation_backoff_c: DegC::new(1.0),
            thermal_warn_margin_c: DegC::new(1.0),
        }
    }
}

/// Wraps a [`Controller`] with the watchdog, retrying writes, and the
/// degradation ladder.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    rung: Rung,
    stress_streak: u32,
    clean_streak: u32,
    /// Stress reason pending attribution for the next escalation.
    pending_reason: Option<StressReason>,
    /// Reason behind the current elevated rung (for recovery events).
    elevated_reason: Option<StressReason>,
    last_safe_setpoint: Celsius,
    /// Set-point actually executed last minute (ramp base for recovery).
    last_executed: Option<Celsius>,
    events: Vec<SupervisorEvent>,
    events_dropped: u64,
    safe_mode_minutes: u64,
    hold_minutes: u64,
    watchdog_trips: u64,
    write_failures: u64,
    write_retries: u64,
    decision_timeouts: u64,
    /// Where minute-boundary status is published for network readers
    /// (none by default; see [`crate::status::StatusBoard`]). Not part
    /// of checkpointed state — a resumed process re-attaches its own.
    status_board: Option<std::sync::Arc<crate::status::StatusBoard>>,
}

/// A full snapshot of a [`Supervisor`]'s mutable state, as captured into
/// (and restored from) a [`crate::checkpoint::Checkpoint`]. The ladder's
/// wall-clock-dependent history (watchdog trips, retry counts) cannot be
/// reproduced by replaying an episode prefix, so a resume *installs* this
/// snapshot at the cursor instead of re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorState {
    /// Current rung.
    pub rung: Rung,
    /// Consecutive stressed minutes so far.
    pub stress_streak: u32,
    /// Consecutive clean minutes so far.
    pub clean_streak: u32,
    /// Stress reason pending attribution for the next escalation.
    pub pending_reason: Option<StressReason>,
    /// Reason behind the current elevated rung.
    pub elevated_reason: Option<StressReason>,
    /// The hold rung's target.
    pub last_safe_setpoint: Celsius,
    /// Set-point executed last minute.
    pub last_executed: Option<Celsius>,
    /// The transition log (bounded by `max_events`).
    pub events: Vec<SupervisorEvent>,
    /// Events dropped from the log by the ring cap.
    pub events_dropped: u64,
    /// Minutes spent at `SafeMode`.
    pub safe_mode_minutes: u64,
    /// Minutes spent at `HoldLastSafe`.
    pub hold_minutes: u64,
    /// Soft-watchdog trips.
    pub watchdog_trips: u64,
    /// Writes failed after all retries.
    pub write_failures: u64,
    /// Individual write retries.
    pub write_retries: u64,
    /// Hard-deadline overruns.
    pub decision_timeouts: u64,
}

impl Supervisor {
    /// A supervisor at rung `Normal` with `cfg`'s thresholds.
    pub fn new(cfg: SupervisorConfig) -> Self {
        let last_safe_setpoint = NOMINAL_SETPOINT.max(cfg.safe_setpoint);
        Supervisor {
            cfg,
            rung: Rung::Normal,
            stress_streak: 0,
            clean_streak: 0,
            pending_reason: None,
            elevated_reason: None,
            last_safe_setpoint,
            last_executed: None,
            events: Vec::new(),
            events_dropped: 0,
            safe_mode_minutes: 0,
            hold_minutes: 0,
            watchdog_trips: 0,
            write_failures: 0,
            write_retries: 0,
            decision_timeouts: 0,
            status_board: None,
        }
    }

    /// Publishes a [`crate::status::StatusSnapshot`] to `board` at every
    /// minute boundary from now on, making this supervisor's rung,
    /// executed set-point, and health counters visible to the network
    /// service's `STATUS`/`SETPOINT` endpoints.
    pub fn attach_status_board(&mut self, board: std::sync::Arc<crate::status::StatusBoard>) {
        self.status_board = Some(board);
    }

    /// The configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Current rung.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// The ladder's transition log.
    pub fn events(&self) -> &[SupervisorEvent] {
        &self.events
    }

    /// Minutes spent at `SafeMode`.
    pub fn safe_mode_minutes(&self) -> u64 {
        self.safe_mode_minutes
    }

    /// Minutes spent at `HoldLastSafe`.
    pub fn hold_minutes(&self) -> u64 {
        self.hold_minutes
    }

    /// Decisions discarded for blowing the budget.
    pub fn watchdog_trips(&self) -> u64 {
        self.watchdog_trips
    }

    /// Write attempts that failed after all retries.
    pub fn write_failures(&self) -> u64 {
        self.write_failures
    }

    /// Individual write retries performed.
    pub fn write_retries(&self) -> u64 {
        self.write_retries
    }

    /// Decisions discarded for overrunning the hard step deadline.
    pub fn decision_timeouts(&self) -> u64 {
        self.decision_timeouts
    }

    /// Transition-log entries dropped by the ring cap.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Appends to the transition log, dropping the oldest entry once the
    /// configured cap is reached (drop-oldest, like the obs trace ring).
    fn push_event(&mut self, event: SupervisorEvent) {
        if self.cfg.max_events == 0 {
            self.events_dropped += 1;
            tesla_obs::counter!("supervisor_events_dropped_total").inc();
            return;
        }
        if self.events.len() >= self.cfg.max_events {
            self.events.remove(0);
            self.events_dropped += 1;
            tesla_obs::counter!("supervisor_events_dropped_total").inc();
        }
        self.events.push(event);
    }

    /// Snapshots the full mutable state (for checkpointing).
    pub fn state(&self) -> SupervisorState {
        SupervisorState {
            rung: self.rung,
            stress_streak: self.stress_streak,
            clean_streak: self.clean_streak,
            pending_reason: self.pending_reason,
            elevated_reason: self.elevated_reason,
            last_safe_setpoint: self.last_safe_setpoint,
            last_executed: self.last_executed,
            events: self.events.clone(),
            events_dropped: self.events_dropped,
            safe_mode_minutes: self.safe_mode_minutes,
            hold_minutes: self.hold_minutes,
            watchdog_trips: self.watchdog_trips,
            write_failures: self.write_failures,
            write_retries: self.write_retries,
            decision_timeouts: self.decision_timeouts,
        }
    }

    /// Installs a snapshot taken by [`Supervisor::state`], overriding the
    /// current ladder state. Used by the resume path at the checkpoint
    /// cursor; no transition metrics are emitted (the original process
    /// already accounted for them).
    pub fn restore_state(&mut self, state: SupervisorState) {
        self.rung = state.rung;
        self.stress_streak = state.stress_streak;
        self.clean_streak = state.clean_streak;
        self.pending_reason = state.pending_reason;
        self.elevated_reason = state.elevated_reason;
        self.last_safe_setpoint = state.last_safe_setpoint;
        self.last_executed = state.last_executed;
        self.events = state.events;
        self.events_dropped = state.events_dropped;
        self.safe_mode_minutes = state.safe_mode_minutes;
        self.hold_minutes = state.hold_minutes;
        self.watchdog_trips = state.watchdog_trips;
        self.write_failures = state.write_failures;
        self.write_retries = state.write_retries;
        self.decision_timeouts = state.decision_timeouts;
    }

    /// Starts the ladder at `HoldLastSafe` with `reason` — the posture a
    /// restarted control plane takes when no valid checkpoint survived:
    /// hold the (nominal) safe set-point until `recover_after` clean
    /// minutes prove the plant healthy, instead of trusting a fresh
    /// controller immediately.
    pub fn start_elevated(&mut self, reason: StressReason) {
        if self.rung == Rung::Normal {
            self.rung = Rung::HoldLastSafe;
            self.elevated_reason = Some(reason);
            self.clean_streak = 0;
            self.stress_streak = 0;
            let event = SupervisorEvent {
                minute: 0,
                from: Rung::Normal,
                to: Rung::HoldLastSafe,
                reason,
            };
            record_transition(&event);
            self.push_event(event);
        }
    }

    /// The hold-rung target: `last_safe`, approached from the last
    /// executed set-point at no more than the recovery slew rate when
    /// moving *up* (reducing cooling). Downward moves are immediate.
    fn hold_target(&self) -> Celsius {
        let target = self.last_safe_setpoint;
        match self.last_executed {
            Some(prev) if target > prev => {
                (prev + self.cfg.recovery_slew_c_per_min.max(DegC::new(0.0))).min(target)
            }
            _ => target,
        }
    }

    /// The set-point the ladder would execute if the controller proposed
    /// `proposed` right now.
    pub fn resolve_setpoint(&self, proposed: Celsius) -> Celsius {
        match self.rung {
            Rung::Normal => proposed,
            Rung::HoldLastSafe => self.hold_target(),
            // Safe mode jumps straight to S_min: the safety response must
            // be fast; only the recovery back up is slewed.
            Rung::SafeMode => self.cfg.safe_setpoint,
        }
    }

    /// Runs one decision under the watchdog and resolves it through the
    /// ladder. Returns the set-point to execute.
    pub fn decide(&mut self, controller: &mut dyn Controller, history: &Trace) -> Celsius {
        let t0 = Instant::now();
        let proposed = Celsius::new(controller.decide(history));
        let elapsed = t0.elapsed();
        // Hard deadline first: an overrun past it means the decision is
        // too stale to trust at all — discard it, log the timeout, and
        // fall back one rung (hold the previous safe set-point).
        if self
            .cfg
            .step_deadline_ms
            .is_some_and(|d| elapsed > Duration::from_millis(d))
        {
            self.decision_timeouts += 1;
            tesla_obs::counter!("supervisor_decision_timeouts_total").inc();
            tesla_obs::event(
                "decision_timeout",
                &[("elapsed_ms", elapsed.as_millis() as f64)],
            );
            self.note_stress(StressReason::DecisionTimeout);
            return match self.rung {
                Rung::SafeMode => self.cfg.safe_setpoint,
                Rung::Normal | Rung::HoldLastSafe => self.hold_target(),
            };
        }
        let over_budget = elapsed > Duration::from_millis(self.cfg.decision_budget_ms);
        if over_budget {
            self.watchdog_trips += 1;
            tesla_obs::counter!("supervisor_watchdog_trips_total").inc();
            self.note_stress(StressReason::Watchdog);
            // The decision is stale; hold the last safe value instead
            // (unless the ladder already demands something stronger).
            return match self.rung {
                Rung::SafeMode => self.cfg.safe_setpoint,
                Rung::Normal | Rung::HoldLastSafe => self.hold_target(),
            };
        }
        self.resolve_setpoint(proposed)
    }

    /// The retry policy for register writes, derived from the config:
    /// the classic doubling schedule the supervisor always used, now
    /// expressed through the shared [`tesla_backoff::BackoffPolicy`]
    /// (with its deterministic jitter).
    fn write_backoff(&self) -> tesla_backoff::BackoffPolicy {
        tesla_backoff::BackoffPolicy {
            base_ms: self.cfg.retry_backoff_ms,
            factor: 2,
            max_delay_ms: self.cfg.retry_backoff_ms.saturating_mul(1 << 10),
            max_attempts: self.cfg.max_write_attempts.max(1),
            jitter: self.cfg.retry_jitter,
            // Salted by the retry history so consecutive failure bursts
            // draw different (but still reproducible) jitter.
            seed: 0xB0FF ^ self.write_retries,
        }
    }

    /// Writes `sp` to the plant (a [`Testbed`] or any other
    /// [`CoolingPlant`]), retrying transient Modbus failures (timeouts,
    /// device rejections) with the shared jittered-exponential backoff
    /// policy. Validation errors (out-of-spec set-points) are not
    /// retried — retrying cannot fix them. Returns the quantized
    /// set-point latched, or the error from the final attempt.
    pub fn write_with_retry(
        &mut self,
        plant: &mut dyn CoolingPlant,
        sp: Celsius,
    ) -> Result<Celsius, SimError> {
        let policy = self.write_backoff();
        let retries = &mut self.write_retries;
        let result = policy.run(
            |_| plant.try_write_setpoint(sp),
            |e| matches!(e, SimError::WriteTimeout | SimError::RegisterRejected(_)),
            |_| {
                *retries += 1;
                tesla_obs::counter!("supervisor_write_retries_total").inc();
            },
        );
        if result.is_err() {
            self.write_failures += 1;
            tesla_obs::counter!("supervisor_write_failures_total").inc();
            self.note_stress(StressReason::WriteFailed);
        }
        result
    }

    /// Marks the current minute as stressed for `reason`. The first
    /// reason noted in a minute wins attribution. Called internally by
    /// the watchdog/write paths; external runtimes use it for stress the
    /// supervisor cannot observe itself (e.g. a lost consumer thread).
    pub fn note_stress(&mut self, reason: StressReason) {
        if self.pending_reason.is_none() {
            self.pending_reason = Some(reason);
        }
    }

    /// Closes one supervised minute: folds the minute's telemetry health
    /// and observed thermals into the stress signal, advances the
    /// hysteresis streaks, and moves the ladder. `minute` indexes the
    /// metered episode (for the event log).
    pub fn end_of_minute(
        &mut self,
        minute: usize,
        quarantined_frac: f64,
        observed_cold_aisle_max: Celsius,
        executed_setpoint: Celsius,
    ) {
        if quarantined_frac >= self.cfg.quarantine_stress_frac {
            self.note_stress(StressReason::Telemetry);
        }
        if observed_cold_aisle_max > self.cfg.d_allowed {
            self.note_stress(StressReason::ThermalViolation);
        }
        let warned = observed_cold_aisle_max
            > self.cfg.d_allowed - self.cfg.thermal_warn_margin_c.max(DegC::new(0.0));
        if warned {
            // The executed set-point just proved (or is about to prove)
            // unsafe at the current load: a stale `last_safe` must not be
            // re-held as-is, or the ladder limit-cycles between safe mode
            // and the same violating value. Pull it below what was
            // executed (never above, never under `S_min`). Acting already
            // in the warning band matters because of thermal lag — by the
            // time the limit itself is crossed, the room has minutes of
            // overshoot banked.
            let fallback = (executed_setpoint - self.cfg.violation_backoff_c.max(DegC::new(0.0)))
                .max(self.cfg.safe_setpoint);
            if fallback < self.last_safe_setpoint {
                tesla_obs::counter!("supervisor_violation_backoffs_total").inc();
            }
            self.last_safe_setpoint = self.last_safe_setpoint.min(fallback);
        }

        match self.rung {
            Rung::SafeMode => self.safe_mode_minutes += 1,
            Rung::HoldLastSafe => self.hold_minutes += 1,
            Rung::Normal => {}
        }
        tesla_obs::global()
            .counter(
                "supervisor_rung_minutes_total",
                &[("rung", self.rung.label())],
            )
            .inc();
        tesla_obs::gauge!("supervisor_rung_index").set(self.rung.index() as f64);

        let stressed = self.pending_reason.is_some();
        if stressed {
            self.stress_streak += 1;
            self.clean_streak = 0;
            if self.stress_streak >= self.cfg.escalate_after.max(1) && self.rung != Rung::SafeMode {
                let from = self.rung;
                self.rung = self.rung.escalated();
                let reason = self.pending_reason.unwrap_or(StressReason::Telemetry);
                self.elevated_reason = Some(reason);
                let event = SupervisorEvent {
                    minute,
                    from,
                    to: self.rung,
                    reason,
                };
                record_transition(&event);
                self.push_event(event);
                self.stress_streak = 0;
            }
        } else {
            self.clean_streak += 1;
            self.stress_streak = 0;
            if self.rung == Rung::Normal {
                // Only a clean, normally-executed minute defines "safe" —
                // and not one inside the warning band, or the update
                // would re-bless a set-point the backoff just rejected.
                if !warned {
                    self.last_safe_setpoint = executed_setpoint;
                }
            } else if self.clean_streak >= self.cfg.recover_after.max(1) {
                let from = self.rung;
                self.rung = self.rung.recovered();
                let reason = self.elevated_reason.unwrap_or(StressReason::Telemetry);
                let event = SupervisorEvent {
                    minute,
                    from,
                    to: self.rung,
                    reason,
                };
                record_transition(&event);
                self.push_event(event);
                if self.rung == Rung::Normal {
                    self.elevated_reason = None;
                }
                self.clean_streak = 0;
            }
        }
        self.pending_reason = None;
        self.last_executed = Some(executed_setpoint);
        if let Some(board) = &self.status_board {
            board.publish(crate::status::StatusSnapshot::capture(
                self,
                minute as u64,
                executed_setpoint,
                observed_cold_aisle_max,
            ));
        }
    }

    /// Forces the ladder straight to `SafeMode` (the decision process is
    /// gone; nothing milder is meaningful).
    pub fn force_safe_mode(&mut self, minute: usize, reason: StressReason) {
        if self.rung != Rung::SafeMode {
            let from = self.rung;
            self.rung = Rung::SafeMode;
            self.elevated_reason = Some(reason);
            // A clean streak from before the forced escalation must not
            // count toward recovery.
            self.clean_streak = 0;
            self.stress_streak = 0;
            let event = SupervisorEvent {
                minute,
                from,
                to: Rung::SafeMode,
                reason,
            };
            record_transition(&event);
            self.push_event(event);
        }
    }

    /// Resets ladder state between episodes (the event log is cleared).
    pub fn reset(&mut self) {
        self.rung = Rung::Normal;
        self.stress_streak = 0;
        self.clean_streak = 0;
        self.pending_reason = None;
        self.elevated_reason = None;
        self.last_safe_setpoint = NOMINAL_SETPOINT.max(self.cfg.safe_setpoint);
        self.last_executed = None;
        self.events.clear();
        self.events_dropped = 0;
        self.safe_mode_minutes = 0;
        self.hold_minutes = 0;
        self.watchdog_trips = 0;
        self.write_failures = 0;
        self.write_retries = 0;
        self.decision_timeouts = 0;
    }
}

/// State installed into the control plane at the resume cursor (see
/// [`crate::resume`]).
#[derive(Debug, Clone)]
pub struct ResumeState {
    /// The supervisor snapshot from the checkpoint.
    pub supervisor: SupervisorState,
    /// Opaque controller state bytes ([`Controller::save_state`]).
    pub controller: Option<Vec<u8>>,
}

/// One live (post-cursor) minute as seen by an engine observer.
pub(crate) struct EngineMinute<'a> {
    /// Metered minute just completed.
    pub minute: usize,
    /// Executed set-points so far (length `minute + 1`).
    // lint:allow(no-raw-f64-in-public-api): crate-internal engine view mirroring EvalResult's raw trace
    pub setpoints: &'a [f64],
    /// The supervisor, after `end_of_minute`.
    pub supervisor: &'a Supervisor,
    /// The controller, after its decision.
    pub controller: &'a dyn Controller,
    /// Whether the ladder moved this minute.
    pub rung_changed: bool,
}

/// Hooks that turn the supervised episode runner into a resumable,
/// checkpointable engine. The default (`EngineHooks::default()`) is a
/// plain uninterrupted episode.
#[derive(Default)]
pub(crate) struct EngineHooks<'a> {
    /// Executed set-points forced for minutes `0..prefix.len()` (the
    /// bit-identical replay of the pre-crash prefix). While replaying,
    /// the controller's decision path is skipped ([`Controller::
    /// replay_minute`] runs instead) and the supervisor's ladder is not
    /// advanced — its state is installed wholesale at the cursor.
    pub prefix: &'a [f64],
    /// State installed when the metered loop reaches `prefix.len()`.
    pub resume: Option<&'a ResumeState>,
    /// Ladder posture applied right after reset: the no-valid-checkpoint
    /// fallback starts at `HoldLastSafe` instead of trusting a cold
    /// controller immediately.
    pub start_elevated: Option<StressReason>,
    /// Simulated crash: stop after this many metered minutes.
    pub abort_after: Option<usize>,
    /// Called after each live (non-replayed) minute — the checkpoint
    /// writer hangs off this.
    pub observer: Option<&'a mut dyn FnMut(EngineMinute<'_>)>,
}

/// Runs one supervised closed-loop episode: telemetry is sanitized by
/// per-signal [`HealthMonitor`]s before the controller sees it, decisions
/// run under the watchdog, writes retry, and the degradation ladder
/// governs what is actually executed. Thermal-safety metrics are scored
/// on the *ground-truth* cold-aisle temperature, not the possibly-lying
/// sensors.
pub fn run_supervised_episode(
    controller: &mut dyn Controller,
    supervisor: &mut Supervisor,
    config: &EpisodeConfig,
) -> Result<EvalResult, CoreError> {
    run_supervised_episode_with(controller, supervisor, config, EngineHooks::default())
}

/// The engine behind [`run_supervised_episode`]: the same loop, plus the
/// replay/resume/checkpoint hooks used by [`crate::resume`]. Everything
/// that feeds the physics (set-point writes, workload sampling, sensor
/// sanitization, trace pruning) is identical in replayed and live
/// minutes, which is what makes a resumed episode bit-identical to an
/// uninterrupted one from the cursor on.
pub(crate) fn run_supervised_episode_with(
    controller: &mut dyn Controller,
    supervisor: &mut Supervisor,
    config: &EpisodeConfig,
    mut hooks: EngineHooks<'_>,
) -> Result<EvalResult, CoreError> {
    let mut testbed = Testbed::new(config.sim.clone(), config.seed)?;
    testbed.set_fault_plan(config.faults.clone());
    controller.reset();
    supervisor.reset();
    if let Some(reason) = hooks.start_elevated {
        supervisor.start_elevated(reason);
    }
    let mut episode = ZoneEpisode::new(testbed, config);
    episode.warmup()?;

    for m in 0..config.minutes {
        if hooks.abort_after == Some(m) {
            // Simulated crash: the process dies before minute m runs.
            // Return what was metered so far; the caller resumes from the
            // last checkpoint.
            break;
        }
        let replaying = m < hooks.prefix.len();
        if m == hooks.prefix.len() {
            if let Some(state) = hooks.resume {
                // The cursor: the prefix replay rebuilt the plant
                // (testbed, workload, RNG, health monitors, trace) —
                // install the control-plane state the checkpoint carried,
                // overriding anything the replay derived, because
                // wall-clock stress (watchdog trips, retry counts) is not
                // reproducible offline.
                supervisor.restore_state(state.supervisor.clone());
                if let Some(bytes) = &state.controller {
                    controller.load_state(bytes);
                }
            }
        }
        let _minute_span = tesla_obs::span!("supervised_minute", minute = m);
        let rung_before = supervisor.rung();
        let sp = if replaying {
            // Replay: force the recorded executed set-point. The
            // controller only re-runs its deterministic replay hook (e.g.
            // online retrains); its full decision state is installed at
            // the cursor.
            episode.replay_decision(m, controller, hooks.prefix[m])
        } else {
            episode.decide(supervisor, controller)
        };
        episode.advance(m, sp, supervisor, replaying)?;
        if !replaying {
            if let Some(observer) = hooks.observer.as_mut() {
                observer(EngineMinute {
                    minute: m,
                    setpoints: episode.setpoints(),
                    supervisor,
                    controller: &*controller,
                    rung_changed: supervisor.rung() != rung_before,
                });
            }
        }
    }

    Ok(episode.finish(controller.name(), supervisor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;
    use tesla_sim::{
        ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow, PlantFault, PlantFaultKind,
        SensorFault, SensorFaultKind, SensorTarget, SimConfig,
    };
    use tesla_workload::LoadSetting;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn quick_supervisor() -> Supervisor {
        Supervisor::new(SupervisorConfig {
            escalate_after: 2,
            recover_after: 4,
            ..SupervisorConfig::default()
        })
    }

    #[test]
    fn ladder_starts_normal_and_passes_decisions_through() {
        let mut sup = quick_supervisor();
        let mut ctrl = FixedController::new(c(24.0));
        let sp = sup.decide(&mut ctrl, &Trace::with_sensors(2, 35));
        assert_eq!(sp, c(24.0));
        assert_eq!(sup.rung(), Rung::Normal);
        assert!(sup.events().is_empty());
    }

    #[test]
    fn sustained_stress_climbs_one_rung_then_the_next() {
        let mut sup = quick_supervisor();
        // Two stressed minutes -> HoldLastSafe.
        sup.end_of_minute(0, 1.0, c(21.0), c(23.0));
        assert_eq!(sup.rung(), Rung::Normal);
        sup.end_of_minute(1, 1.0, c(21.0), c(23.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        // Two more -> SafeMode.
        sup.end_of_minute(2, 1.0, c(21.0), c(23.0));
        sup.end_of_minute(3, 1.0, c(21.0), c(23.0));
        assert_eq!(sup.rung(), Rung::SafeMode);
        assert_eq!(sup.events().len(), 2);
        assert_eq!(sup.events()[0].reason, StressReason::Telemetry);
        // Further stress does not re-log SafeMode.
        sup.end_of_minute(4, 1.0, c(21.0), c(23.0));
        sup.end_of_minute(5, 1.0, c(21.0), c(23.0));
        assert_eq!(sup.events().len(), 2);
    }

    #[test]
    fn recovery_needs_the_longer_clean_streak() {
        let mut sup = quick_supervisor();
        sup.end_of_minute(0, 1.0, c(21.0), c(23.0));
        sup.end_of_minute(1, 1.0, c(21.0), c(23.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        // Three clean minutes: not yet (recover_after = 4).
        for m in 2..5 {
            sup.end_of_minute(m, 0.0, c(21.0), c(23.0));
        }
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        sup.end_of_minute(5, 0.0, c(21.0), c(23.0));
        assert_eq!(sup.rung(), Rung::Normal);
    }

    #[test]
    fn alternating_stress_never_escalates() {
        // Hysteresis: stress that never persists `escalate_after` minutes
        // in a row cannot climb the ladder.
        let mut sup = quick_supervisor();
        for m in 0..40 {
            let stressed = m % 2 == 0;
            sup.end_of_minute(m, if stressed { 1.0 } else { 0.0 }, c(21.0), c(23.0));
        }
        assert_eq!(sup.rung(), Rung::Normal);
        assert!(sup.events().is_empty());
    }

    #[test]
    fn thermal_violation_counts_as_stress() {
        let mut sup = quick_supervisor();
        sup.end_of_minute(0, 0.0, c(25.0), c(23.0));
        sup.end_of_minute(1, 0.0, c(25.0), c(23.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        assert_eq!(sup.events()[0].reason, StressReason::ThermalViolation);
    }

    #[test]
    fn hold_rung_returns_last_safe_setpoint() {
        let mut sup = quick_supervisor();
        // A clean normal minute records 26.0 as safe.
        sup.end_of_minute(0, 0.0, c(21.0), c(26.0));
        sup.end_of_minute(1, 1.0, c(21.0), c(27.0));
        sup.end_of_minute(2, 1.0, c(21.0), c(27.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(26.0));
    }

    #[test]
    fn hold_recovery_ramps_upward_from_safe_mode() {
        let mut sup = quick_supervisor();
        // Clean normal minute at 26 °C defines last_safe.
        sup.end_of_minute(0, 0.0, c(21.0), c(26.0));
        sup.force_safe_mode(1, StressReason::ConsumerLost);
        // Four clean safe-mode minutes executing S_min -> recover to Hold.
        for m in 1..5 {
            sup.end_of_minute(m, 0.0, c(21.0), c(20.0));
        }
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        // The hold target climbs at the slew rate, not in one jump.
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(20.25));
        sup.end_of_minute(5, 0.0, c(21.0), c(20.25));
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(20.5));
    }

    #[test]
    fn violation_pulls_last_safe_below_executed() {
        let mut sup = quick_supervisor();
        sup.end_of_minute(0, 0.0, c(21.0), c(26.0));
        // Observed violation while executing 26 °C: last_safe must drop
        // below it rather than be re-held verbatim.
        sup.end_of_minute(1, 0.0, c(23.0), c(26.0));
        sup.end_of_minute(2, 0.0, c(23.0), c(26.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(25.0));
        // The backoff never undercuts S_min.
        sup.end_of_minute(3, 0.0, c(23.0), c(20.3));
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(20.0));
    }

    #[test]
    fn warning_band_backs_off_without_stress() {
        let mut sup = quick_supervisor();
        sup.end_of_minute(0, 0.0, c(21.0), c(26.0));
        // 21.8 °C is inside the 0.5 °C warning band but not a violation:
        // no stress, no event — but the hold fallback must drop.
        sup.end_of_minute(1, 0.0, c(21.8), c(26.0));
        assert_eq!(sup.rung(), Rung::Normal);
        assert!(sup.events().is_empty());
        // Escalate via telemetry stress and observe the lowered target.
        sup.end_of_minute(2, 1.0, c(21.0), c(27.0));
        sup.end_of_minute(3, 1.0, c(21.0), c(27.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(25.0));
    }

    #[test]
    fn safe_mode_resolves_to_smin() {
        let mut sup = quick_supervisor();
        sup.force_safe_mode(7, StressReason::ConsumerLost);
        assert_eq!(sup.rung(), Rung::SafeMode);
        assert_eq!(sup.resolve_setpoint(c(30.0)), c(20.0));
        assert_eq!(sup.events().len(), 1);
        assert_eq!(sup.events()[0].minute, 7);
    }

    #[test]
    fn write_with_retry_survives_nothing_but_reports_failure() {
        let mut sup = quick_supervisor();
        let mut tb = Testbed::new(SimConfig::default(), 1).unwrap();
        tb.set_fault_plan(FaultPlan {
            actuators: vec![ActuatorFault {
                kind: ActuatorFaultKind::WriteTimeout,
                window: FaultWindow::new(0.0, 1e9),
            }],
            ..FaultPlan::default()
        });
        assert!(sup.write_with_retry(&mut tb, c(24.0)).is_err());
        assert_eq!(sup.write_failures(), 1);
        assert_eq!(sup.write_retries(), 3, "4 attempts = 3 retries");
    }

    #[test]
    fn write_with_retry_does_not_retry_validation_errors() {
        let mut sup = quick_supervisor();
        let mut tb = Testbed::new(SimConfig::default(), 1).unwrap();
        assert!(sup.write_with_retry(&mut tb, c(99.0)).is_err());
        assert_eq!(sup.write_retries(), 0);
        assert_eq!(sup.write_failures(), 1);
    }

    #[test]
    fn reset_restores_normal() {
        let mut sup = quick_supervisor();
        sup.force_safe_mode(1, StressReason::Watchdog);
        sup.reset();
        assert_eq!(sup.rung(), Rung::Normal);
        assert!(sup.events().is_empty());
        assert_eq!(sup.safe_mode_minutes(), 0);
    }

    fn episode_with(faults: FaultPlan, minutes: usize) -> (EvalResult, Supervisor) {
        let mut ctrl = FixedController::new(c(23.0));
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let cfg = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes,
            warmup_minutes: 20,
            seed: 11,
            faults,
            ..EpisodeConfig::default()
        };
        let r = run_supervised_episode(&mut ctrl, &mut sup, &cfg).unwrap();
        (r, sup)
    }

    #[test]
    fn long_episode_with_retention_holds_bounded_memory() {
        // A 7-day supervised episode keeping a 1-day raw horizon: the
        // in-process trace must stay bounded at keep + 25% slack instead
        // of growing to 10k+ rows.
        let mut ctrl = FixedController::new(c(23.0));
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let minutes = 7 * 24 * 60;
        let cfg = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes,
            warmup_minutes: 60,
            seed: 5,
            retention: Some(tesla_historian::RetentionPolicy::new(
                86_400.0,
                7.0 * 86_400.0,
            )),
            ..EpisodeConfig::default()
        };
        let r = run_supervised_episode(&mut ctrl, &mut sup, &cfg).unwrap();
        let keep = 1440; // 86 400 s of 1-minute samples
        assert!(
            r.trace.len() <= keep + keep / 4,
            "trace holds {} rows, bound is {}",
            r.trace.len(),
            keep + keep / 4
        );
        assert!(r.trace.len() >= keep, "must still retain the full horizon");
        // The metered series themselves are untouched by retention.
        assert_eq!(r.setpoints.len(), minutes);
        assert_eq!(r.cold_aisle_max.len(), minutes);
        // The metering mark slid off the retained window entirely.
        assert_eq!(r.metered_from, 0);
        assert_eq!(r.safe_mode_minutes, 0, "retention must not fake stress");
    }

    #[test]
    fn supervised_episode_without_faults_is_clean() {
        let (r, sup) = episode_with(FaultPlan::none(), 60);
        assert_eq!(r.setpoints.len(), 60);
        assert!(r.cooling_energy_kwh > 0.0);
        assert_eq!(r.safe_mode_minutes, 0);
        assert_eq!(sup.rung(), Rung::Normal);
        assert!(sup.events().is_empty());
        assert_eq!(r.tsv_percent, 0.0);
    }

    #[test]
    fn stuck_hot_sensor_does_not_fake_violations() {
        // Warm-up is 20 min; the fault opens after it.
        // 48 °C is outside the health monitor's plausible band, so the
        // stuck sensor is quarantined on its first corrupted sample.
        let (r, _sup) = episode_with(
            FaultPlan {
                sensors: vec![SensorFault {
                    target: SensorTarget::DcSensor(2),
                    kind: SensorFaultKind::StuckAt(48.0),
                    window: FaultWindow::new(30.0, 70.0),
                }],
                ..FaultPlan::default()
            },
            60,
        );
        // Ground-truth scoring: the lying sensor cannot create TSV.
        assert_eq!(r.tsv_percent, 0.0);
        // And the trace the controller sees stays finite and plausible.
        for col in &r.trace.dc_temps {
            for &v in col {
                assert!(v.is_finite());
                assert!(v < 45.0, "stuck value must have been imputed away, saw {v}");
            }
        }
    }

    #[test]
    fn fan_failure_drives_ladder_to_safe_mode() {
        let (r, sup) = episode_with(
            FaultPlan {
                plant: vec![PlantFault {
                    kind: PlantFaultKind::FanFailure,
                    window: FaultWindow::new(25.0, 45.0),
                }],
                ..FaultPlan::default()
            },
            80,
        );
        // No airflow for 20 min must heat the room past the limit, which
        // is sustained stress -> the ladder must have moved.
        assert!(
            !sup.events().is_empty(),
            "sustained thermal violation must log a degradation event"
        );
        assert!(r.safe_mode_minutes > 0 || sup.hold_minutes() > 0);
        // Metrics stay finite under the fault.
        assert!(r.cooling_energy_kwh.is_finite());
        assert!(r.tsv_percent.is_finite());
    }

    /// Sleeps past the hard deadline, then proposes a warm set-point the
    /// supervisor must never execute.
    struct GlacialController;
    impl Controller for GlacialController {
        fn name(&self) -> &str {
            "glacial"
        }
        fn decide(&mut self, _history: &Trace) -> f64 {
            std::thread::sleep(Duration::from_millis(20));
            25.0
        }
    }

    #[test]
    fn hard_deadline_discards_the_decision_and_holds() {
        let mut sup = Supervisor::new(SupervisorConfig {
            step_deadline_ms: Some(5),
            // Soft watchdog far above the deadline: the hard path, not
            // the stress-only path, must be the one that fires.
            decision_budget_ms: 60_000,
            escalate_after: 2,
            ..SupervisorConfig::default()
        });
        let mut ctrl = GlacialController;
        let history = Trace::with_sensors(2, 35);
        let sp = sup.decide(&mut ctrl, &history);
        assert_ne!(sp, c(25.0), "an overrun decision must be discarded");
        assert_eq!(sup.decision_timeouts(), 1);
        // The overrun counts as sustained stress: two timed-out minutes
        // climb the ladder with DecisionTimeout as the reason.
        sup.end_of_minute(0, 0.0, c(21.0), c(23.0));
        let _ = sup.decide(&mut ctrl, &history);
        sup.end_of_minute(1, 0.0, c(21.0), c(23.0));
        assert_eq!(sup.rung(), Rung::HoldLastSafe);
        assert_eq!(sup.events()[0].reason, StressReason::DecisionTimeout);
    }

    #[test]
    fn deadline_disabled_uses_slow_decisions() {
        let mut sup = Supervisor::new(SupervisorConfig {
            step_deadline_ms: None,
            decision_budget_ms: 60_000,
            ..SupervisorConfig::default()
        });
        let mut ctrl = GlacialController;
        let sp = sup.decide(&mut ctrl, &Trace::with_sensors(2, 35));
        assert_eq!(sp, c(25.0));
        assert_eq!(sup.decision_timeouts(), 0);
    }

    #[test]
    fn event_ring_drops_oldest_beyond_the_cap() {
        let mut sup = Supervisor::new(SupervisorConfig {
            escalate_after: 1,
            recover_after: 1,
            max_events: 3,
            ..SupervisorConfig::default()
        });
        // Flap stress on and off: every flip logs a transition.
        for m in 0..10u64 {
            let stressed = if m % 2 == 0 { 1.0 } else { 0.0 };
            sup.end_of_minute(m as usize, stressed, c(21.0), c(23.0));
        }
        assert_eq!(sup.events().len(), 3, "ring must cap at max_events");
        assert!(sup.events_dropped() > 0);
        // The survivors are the newest transitions, in order.
        let minutes: Vec<usize> = sup.events().iter().map(|e| e.minute).collect();
        let mut sorted = minutes.clone();
        sorted.sort_unstable();
        assert_eq!(minutes, sorted);
        assert!(minutes[0] >= 4, "oldest entries must have been evicted");
    }
}
