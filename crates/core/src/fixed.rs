//! The industry-practice baseline: a fixed set-point chosen by a human
//! operator (23 °C in the paper's Table 5).

use crate::controller::Controller;
use tesla_forecast::Trace;
use tesla_units::Celsius;

/// Always returns the same set-point.
#[derive(Debug, Clone)]
pub struct FixedController {
    setpoint: Celsius,
    name: String,
}

impl FixedController {
    /// Creates the controller.
    pub fn new(setpoint: Celsius) -> Self {
        FixedController {
            setpoint,
            name: format!("fixed-{:.0}C", setpoint.value()),
        }
    }

    /// The configured set-point.
    pub fn setpoint(&self) -> Celsius {
        self.setpoint
    }
}

impl Controller for FixedController {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, _history: &Trace) -> f64 {
        self.setpoint.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_returns_configured_setpoint() {
        let mut c = FixedController::new(Celsius::new(23.0));
        assert_eq!(c.decide(&Trace::with_sensors(1, 1)), 23.0);
        assert_eq!(c.name(), "fixed-23C");
        assert_eq!(c.setpoint(), Celsius::new(23.0));
    }
}
