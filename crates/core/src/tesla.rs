//! The TESLA controller: Fig. 5's loop body, Fig. 7's decision pipeline.

// analysis:allow-file(panic-free-control-path): history columns are
// validated rectangular before decide() runs; window indices derive
// from those checked lengths.
// analysis:allow-file(no-alloc-in-decide-steady-state): the per-
// minute decision assembles bounded history/hint/outcome vectors;
// the paper's controller re-plans from scratch each minute.
use crate::checkpoint::{ByteReader, ByteWriter};
use crate::controller::Controller;
use crate::objective::{constraint, interruption_penalty, objective};
use crate::smoothing::SmoothingBuffer;
use crate::CoreError;
use std::collections::VecDeque;
use tesla_bo::{BayesianOptimizer, BoConfig, BoOutcome, PredictionErrorMonitor};
use tesla_forecast::{DcTimeSeriesModel, ModelConfig, Trace};
use tesla_units::{Celsius, DegC, NOMINAL_SETPOINT};

/// TESLA configuration (Table 2 defaults).
#[derive(Debug, Clone)]
pub struct TeslaConfig {
    /// Time-series model hyper-parameters (horizon `L = 20`, α's).
    pub model: ModelConfig,
    /// Bayesian-optimizer settings (bounds = ACU spec range).
    pub bo: BoConfig,
    /// Cold-aisle temperature limit `d_allowed` (22 °C).
    pub d_allowed: Celsius,
    /// Safety head-room subtracted from `d_allowed` inside the
    /// optimizer's constraint (°C). The TSV metric is still scored at
    /// `d_allowed`; the margin absorbs model error and sensor noise so
    /// marginal decisions don't realize just past the limit.
    pub safety_margin: DegC,
    /// Interruption-penalty threshold `κ` (0.5 °C).
    pub kappa: DegC,
    /// Weight of the interruption penalty in the objective, kWh per
    /// °C·step (the paper's normalized units make E and D commensurate;
    /// in physical units the trade-off is explicit).
    pub interruption_weight: f64,
    /// Smoothing-buffer length `N` (5).
    pub smoothing: usize,
    /// Bootstrap sample count `N_b` (500).
    pub n_bootstrap: usize,
    /// Indices of the cold-aisle sensors (`I_cold` of Eq. 9).
    pub cold_sensors: Vec<usize>,
    /// Prediction-error monitor window, samples (one day).
    pub monitor_window: usize,
    /// Prior (pre-warm-up) noise variances for (objective, constraint).
    pub prior_noise: (f64, f64),
    /// Set-point returned before enough history exists.
    pub cold_start_setpoint: Celsius,
    /// Online recalibration: refit the DC time-series model from the
    /// trailing history every this-many decisions (§3.3: after an
    /// S_min fallback TESLA "will re-calibrate itself later"; §8 notes
    /// the decision stage is decoupled from modeling, so the model can be
    /// refreshed in place). `None` disables (the paper's deployment
    /// trains offline once).
    pub retrain_every: Option<u64>,
    /// Minimum trailing-history length (samples) required to retrain.
    pub retrain_min_history: usize,
    /// Worker threads for batched candidate evaluation (`std::thread::
    /// scope` fan-out inside one decision). `0` or `1` evaluates serially
    /// with no threads spawned. Results are written by batch position, so
    /// every worker count picks bit-identical set-points for the same
    /// seed — this only trades wall-clock for cores.
    pub parallel_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TeslaConfig {
    fn default() -> Self {
        TeslaConfig {
            model: ModelConfig::default(),
            bo: BoConfig::default(),
            d_allowed: Celsius::new(22.0),
            safety_margin: DegC::new(0.5),
            kappa: DegC::new(0.5),
            interruption_weight: 0.1,
            smoothing: 5,
            n_bootstrap: 500,
            cold_sensors: (0..11).collect(),
            monitor_window: PredictionErrorMonitor::ONE_DAY_MINUTES,
            prior_noise: (0.01, 0.25),
            cold_start_setpoint: NOMINAL_SETPOINT,
            retrain_every: None,
            retrain_min_history: 6 * 60,
            parallel_workers: 1,
            seed: 0,
        }
    }
}

/// A prediction filed for later scoring by the error monitor.
#[derive(Debug, Clone, Copy)]
struct PendingPrediction {
    /// Trace index the prediction was made at.
    made_at: usize,
    /// Predicted objective components under the executed decision.
    predicted_energy: f64,
    /// Predicted interruption penalty (needed to reconstruct O).
    predicted_penalty: f64,
    /// Predicted constraint value.
    predicted_constraint: f64,
    /// The set-point the prediction assumed.
    setpoint: f64,
}

/// The TESLA cooling controller.
pub struct TeslaController {
    model: DcTimeSeriesModel,
    optimizer: BayesianOptimizer,
    monitor: PredictionErrorMonitor,
    buffer: SmoothingBuffer,
    config: TeslaConfig,
    pending: VecDeque<PendingPrediction>,
    step: u64,
    last_outcome: Option<BoOutcome>,
    fallback_count: u64,
    retrain_count: u64,
}

impl TeslaController {
    /// Builds the controller around a model trained offline on the sweep
    /// dataset (§5.1).
    pub fn new(trace: &Trace, config: TeslaConfig) -> Result<Self, CoreError> {
        let model = DcTimeSeriesModel::fit(trace, config.model.clone())?;
        Self::with_model(model, config)
    }

    /// Builds the controller from an already-trained model.
    pub fn with_model(model: DcTimeSeriesModel, config: TeslaConfig) -> Result<Self, CoreError> {
        for &k in &config.cold_sensors {
            if k >= model.n_dc_sensors() {
                return Err(CoreError::Config(format!(
                    "cold sensor index {k} out of range ({} sensors)",
                    model.n_dc_sensors()
                )));
            }
        }
        let optimizer = BayesianOptimizer::new(config.bo.clone())?;
        let monitor = PredictionErrorMonitor::new(config.monitor_window, config.prior_noise);
        let buffer = SmoothingBuffer::new(config.smoothing);
        Ok(TeslaController {
            model,
            optimizer,
            monitor,
            buffer,
            config,
            pending: VecDeque::new(),
            step: 0,
            last_outcome: None,
            fallback_count: 0,
            retrain_count: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TeslaConfig {
        &self.config
    }

    /// The limit the optimizer actually constrains against:
    /// `d_allowed − safety_margin`.
    fn d_effective(&self) -> Celsius {
        self.config.d_allowed - self.config.safety_margin
    }

    /// The most recent optimizer outcome (Fig. 8b diagnostics: grid,
    /// posterior objective/constraint means, fallback flag).
    pub fn last_outcome(&self) -> Option<&BoOutcome> {
        self.last_outcome.as_ref()
    }

    /// Number of prediction errors currently in the monitor.
    pub fn monitor_len(&self) -> usize {
        self.monitor.len()
    }

    /// Evaluates the (objective, constraint) pair the optimizer would see
    /// for a candidate set-point at the current history — the quantities
    /// plotted in Fig. 8b. Returns `None` when the history is too short.
    // lint:allow(no-raw-f64-in-public-api): dimensionless (objective, constraint) pair out
    pub fn probe(&self, history: &Trace, setpoint: Celsius) -> Option<(f64, f64)> {
        let l = self.config.model.horizon;
        let now = history.len().checked_sub(1)?;
        let window = history.window_at(now, l).ok()?;
        let pred = self.model.predict(&window, setpoint).ok()?;
        Some((
            objective(
                &pred,
                setpoint,
                self.config.kappa,
                self.config.interruption_weight,
            ),
            constraint(&pred, &self.config.cold_sensors, self.d_effective()),
        ))
    }

    /// Number of decisions that fell back to `S_min` because no candidate
    /// met the feasibility threshold (§3.3's backup strategy).
    pub fn fallback_count(&self) -> u64 {
        self.fallback_count
    }

    /// Number of online model recalibrations performed so far.
    pub fn retrain_count(&self) -> u64 {
        self.retrain_count
    }

    /// Adjusts the thermal-safety limit `d_allowed` during deployment.
    ///
    /// §8: "since the set-point optimization takes place at every control
    /// step, TESLA can adjust the thermal safety constraints during
    /// deployment without retraining, while existing DRL methods have to
    /// retrain their agents." Only the constraint function changes; the
    /// DC time-series model is untouched. Pending predictions are
    /// re-based so the error monitor is not polluted by the limit change.
    pub fn set_thermal_limit(&mut self, d_allowed: Celsius) {
        let delta = (d_allowed - self.config.d_allowed).value();
        if delta == 0.0 {
            return;
        }
        self.config.d_allowed = d_allowed;
        // Pending constraint predictions were expressed relative to the
        // old limit: C = max(d̂) − d_allowed. Shift them to the new one.
        for p in &mut self.pending {
            p.predicted_constraint -= delta;
        }
    }

    /// Adjusts the interruption-penalty threshold κ during deployment.
    pub fn set_kappa(&mut self, kappa: DegC) {
        self.config.kappa = kappa.max(DegC::new(0.0));
    }

    /// The predicted horizon for a candidate set-point (diagnostics).
    pub fn probe_prediction(
        &self,
        history: &Trace,
        setpoint: Celsius,
    ) -> Option<tesla_forecast::Prediction> {
        let l = self.config.model.horizon;
        let now = history.len().checked_sub(1)?;
        let window = history.window_at(now, l).ok()?;
        self.model.predict(&window, setpoint).ok()
    }

    /// Scores matured predictions against realized telemetry and feeds
    /// the error monitor (Fig. 7's "online monitor" loop).
    fn settle_pending(&mut self, history: &Trace) {
        let l = self.config.model.horizon;
        let now = history.len().saturating_sub(1);
        while let Some(front) = self.pending.front().copied() {
            let due = front.made_at + l;
            if due > now {
                break;
            }
            self.pending.pop_front();
            // Realized objective over (made_at+1 ..= made_at+L).
            let actual_energy: f64 = history.acu_energy[front.made_at + 1..=due].iter().sum();
            // Realized interruption proxy from the true inlet temps.
            let inlet_actual: Vec<Vec<f64>> = history
                .acu_inlet
                .iter()
                .map(|col| col[front.made_at + 1..=due].to_vec())
                .collect();
            let actual_penalty = interruption_penalty(
                Celsius::new(front.setpoint),
                &inlet_actual,
                self.config.kappa,
            );
            let w = self.config.interruption_weight;
            let predicted_obj = -(front.predicted_energy + w * front.predicted_penalty);
            let actual_obj = -(actual_energy + w * actual_penalty);

            // Realized constraint: worst cold-aisle reading over the span.
            let mut actual_max = f64::NEG_INFINITY;
            for &k in &self.config.cold_sensors {
                for t in front.made_at + 1..=due {
                    actual_max = actual_max.max(history.dc_temps[k][t]);
                }
            }
            let actual_con =
                actual_max - (self.config.d_allowed - self.config.safety_margin).value();

            self.monitor.record(
                predicted_obj - actual_obj,
                front.predicted_constraint - actual_con,
            );
        }
    }
}

impl Controller for TeslaController {
    fn name(&self) -> &str {
        "tesla"
    }

    fn decide(&mut self, history: &Trace) -> f64 {
        let l = self.config.model.horizon;
        let now = history.len().saturating_sub(1);
        if history.len() < l {
            // Not enough history for a window yet.
            return self.buffer.push(self.config.cold_start_setpoint.value());
        }
        let Ok(window) = history.window_at(now, l) else {
            return self.buffer.push(self.config.cold_start_setpoint.value());
        };

        self.settle_pending(history);
        self.step += 1;
        let mut step_span = tesla_obs::span!("control_step", step = self.step);
        let _step_timer = tesla_obs::Timer::start(tesla_obs::histogram!("tesla_decide_seconds"));
        tesla_obs::counter!("tesla_control_steps_total").inc();

        // Online recalibration: refresh the model from the trailing
        // history on the configured cadence.
        if let Some(every) = self.config.retrain_every {
            if every > 0
                && self.step.is_multiple_of(every)
                && history.len() >= self.config.retrain_min_history
            {
                if let Ok(new_model) = DcTimeSeriesModel::fit(history, self.config.model.clone()) {
                    self.model = new_model;
                    self.retrain_count += 1;
                    tesla_obs::counter!("tesla_retrains_total").inc();
                }
            }
        }
        let noise = self
            .monitor
            .bootstrap_variances(self.config.n_bootstrap, self.config.seed ^ self.step);

        // The optimizer probes the DC time-series model (Fig. 7): each
        // candidate set-point yields a predicted objective/constraint.
        // The window is fixed for the whole decision, so the model is
        // prepared once (all lag-block dot products hoisted) and each
        // candidate pays only for its exogenous terms; predictions are
        // memoized so the chosen set-point's rollout is never recomputed.
        let cfg = &self.config;
        let d_eff = self.config.d_allowed - self.config.safety_margin;
        let Ok(prepared) = self.model.prepare(&window) else {
            return self.buffer.push(self.config.bo.bounds.0);
        };
        let prepared = &prepared;
        let workers = self.config.parallel_workers.max(1);
        let mut cache: std::collections::HashMap<u64, tesla_forecast::Prediction> =
            std::collections::HashMap::new();
        let eval_batch = |batch: &[f64]| -> Vec<(f64, f64)> {
            let preds: Vec<Option<tesla_forecast::Prediction>> = if workers > 1 && batch.len() > 1 {
                let mut out: Vec<Option<tesla_forecast::Prediction>> =
                    (0..batch.len()).map(|_| None).collect();
                let chunk = batch.len().div_ceil(workers.min(batch.len()));
                std::thread::scope(|scope| {
                    for (bs, os) in batch.chunks(chunk).zip(out.chunks_mut(chunk)) {
                        scope.spawn(move || {
                            for (slot, &s) in os.iter_mut().zip(bs) {
                                *slot = prepared.predict(Celsius::new(s)).ok();
                            }
                        });
                    }
                });
                out
            } else {
                batch
                    .iter()
                    .map(|&s| prepared.predict(Celsius::new(s)).ok())
                    .collect()
            };
            batch
                .iter()
                .zip(preds)
                .map(|(&s, pred)| match pred {
                    Some(pred) => {
                        let s = Celsius::new(s);
                        let pair = (
                            objective(&pred, s, cfg.kappa, cfg.interruption_weight),
                            constraint(&pred, &cfg.cold_sensors, d_eff),
                        );
                        cache.insert(s.value().to_bits(), pred);
                        pair
                    }
                    // A failed prediction is treated as badly infeasible
                    // so the optimizer avoids it.
                    None => (f64::MIN / 2.0, f64::MAX / 2.0),
                })
                .collect()
        };
        // Warm-start candidates: the energy-optimal set-point sits near
        // the interruption kink at `inlet + κ` (§6.2: "TESLA saves
        // cooling energy by selecting the highest set-point such that
        // cooling interruption is minimized"), so evaluate that
        // neighbourhood plus the currently executed set-point directly.
        let inlet_now = history
            .acu_inlet
            .iter()
            .filter_map(|col| col.last())
            .sum::<f64>()
            / history.acu_inlet.len().max(1) as f64;
        let kappa = self.config.kappa.value();
        let hints = [
            inlet_now - 2.0 * kappa,
            inlet_now,
            inlet_now + kappa,
            inlet_now + 2.0 * kappa,
            inlet_now + 4.0 * kappa,
            history.setpoint[now],
        ];
        let outcome = match self.optimizer.optimize_batched(
            eval_batch,
            noise,
            self.config.seed ^ (self.step << 17),
            &hints,
        ) {
            Ok(o) => o,
            Err(_) => {
                // Optimizer failure: behave like the infeasible fallback.
                return self.buffer.push(self.config.bo.bounds.0);
            }
        };

        // File the prediction under the *computed* set-point for later
        // error-monitor scoring. The optimizer only ever recommends an
        // evaluated point, so this is a memo-cache hit, not a re-rollout.
        let chosen = cache
            .remove(&outcome.setpoint.to_bits())
            .or_else(|| prepared.predict(Celsius::new(outcome.setpoint)).ok());
        if let Some(pred) = chosen {
            self.pending.push_back(PendingPrediction {
                made_at: now,
                predicted_energy: pred.energy.value(),
                predicted_penalty: interruption_penalty(
                    Celsius::new(outcome.setpoint),
                    &pred.inlet,
                    self.config.kappa,
                ),
                predicted_constraint: constraint(
                    &pred,
                    &self.config.cold_sensors,
                    self.d_effective(),
                ),
                setpoint: outcome.setpoint,
            });
        }

        let computed = outcome.setpoint;
        if outcome.fallback {
            self.fallback_count += 1;
            tesla_obs::counter!("tesla_fallbacks_total").inc();
        }
        self.last_outcome = Some(outcome);
        // §3.4: the executed set-point is the smoothing buffer's running
        // average of the computed ones.
        let executed = self.buffer.push(computed);
        step_span.record_field("computed_setpoint_celsius", computed);
        step_span.record_field("executed_setpoint_celsius", executed);
        executed
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.pending.clear();
        self.step = 0;
        self.last_outcome = None;
        self.fallback_count = 0;
        self.retrain_count = 0;
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = ByteWriter::new();
        w.u8(TESLA_STATE_VERSION);
        w.u64(self.step);
        w.u64(self.fallback_count);
        w.u64(self.retrain_count);
        let buffer = self.buffer.snapshot();
        w.u32(buffer.len() as u32);
        for v in buffer {
            w.f64(v);
        }
        w.u32(self.pending.len() as u32);
        for p in &self.pending {
            w.u64(p.made_at as u64);
            w.f64(p.predicted_energy);
            w.f64(p.predicted_penalty);
            w.f64(p.predicted_constraint);
            w.f64(p.setpoint);
        }
        let pairs = self.monitor.error_pairs();
        w.u32(pairs.len() as u32);
        for (obj, con) in pairs {
            w.f64(obj);
            w.f64(con);
        }
        Some(w.into_vec())
    }

    fn load_state(&mut self, state: &[u8]) -> bool {
        // Parse everything into temporaries first so a truncated or
        // mis-versioned blob leaves the controller untouched.
        let Some(parsed) = parse_tesla_state(state) else {
            return false;
        };
        self.step = parsed.step;
        self.fallback_count = parsed.fallback_count;
        self.retrain_count = parsed.retrain_count;
        self.buffer.restore(&parsed.buffer);
        self.pending = parsed.pending;
        self.monitor.restore_error_pairs(&parsed.monitor_pairs);
        // The last optimizer outcome is a per-decision diagnostic; the
        // next live decision repopulates it.
        self.last_outcome = None;
        true
    }

    fn replay_minute(&mut self, _minute: usize, history: &Trace) {
        // Mirror decide()'s per-step gating exactly — same cold-start
        // early-outs, same step counter, same retrain cadence — without
        // the decision itself. The model refit is deterministic in the
        // history, so replaying it reproduces the model an uninterrupted
        // run would hold at the resume cursor. Buffer, pending, and
        // monitor state are NOT evolved here: they are installed verbatim
        // from the checkpoint via `load_state` at the cursor.
        let l = self.config.model.horizon;
        let now = history.len().saturating_sub(1);
        if history.len() < l || history.window_at(now, l).is_err() {
            return;
        }
        self.step += 1;
        if let Some(every) = self.config.retrain_every {
            if every > 0
                && self.step.is_multiple_of(every)
                && history.len() >= self.config.retrain_min_history
            {
                if let Ok(new_model) = DcTimeSeriesModel::fit(history, self.config.model.clone()) {
                    self.model = new_model;
                    self.retrain_count += 1;
                }
            }
        }
    }
}

/// Version tag for [`TeslaController::save_state`] blobs.
const TESLA_STATE_VERSION: u8 = 1;

/// Decoded `save_state` blob, staged before committing to the controller.
struct ParsedTeslaState {
    step: u64,
    fallback_count: u64,
    retrain_count: u64,
    buffer: Vec<f64>,
    pending: VecDeque<PendingPrediction>,
    monitor_pairs: Vec<(f64, f64)>,
}

fn parse_tesla_state(state: &[u8]) -> Option<ParsedTeslaState> {
    let mut r = ByteReader::new(state);
    if r.u8()? != TESLA_STATE_VERSION {
        return None;
    }
    let step = r.u64()?;
    let fallback_count = r.u64()?;
    let retrain_count = r.u64()?;
    let n_buffer = r.u32()? as usize;
    if n_buffer * 8 > r.remaining() {
        return None;
    }
    let mut buffer = Vec::with_capacity(n_buffer);
    for _ in 0..n_buffer {
        buffer.push(r.f64()?);
    }
    let n_pending = r.u32()? as usize;
    if n_pending * 40 > r.remaining() {
        return None;
    }
    let mut pending = VecDeque::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push_back(PendingPrediction {
            made_at: r.u64()? as usize,
            predicted_energy: r.f64()?,
            predicted_penalty: r.f64()?,
            predicted_constraint: r.f64()?,
            setpoint: r.f64()?,
        });
    }
    let n_pairs = r.u32()? as usize;
    if n_pairs * 16 > r.remaining() {
        return None;
    }
    let mut monitor_pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        monitor_pairs.push((r.f64()?, r.f64()?));
    }
    if r.remaining() != 0 {
        return None;
    }
    Some(ParsedTeslaState {
        step,
        fallback_count,
        retrain_count,
        buffer,
        pending,
        monitor_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_sweep_trace, DatasetConfig};
    use tesla_sim::SimConfig;

    /// Small but real: trains on a short sweep trace from the actual
    /// simulator.
    fn quick_controller() -> (TeslaController, Trace) {
        let dcfg = DatasetConfig {
            days: 0.6,
            seed: 11,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let config = TeslaConfig {
            model: ModelConfig {
                horizon: 8,
                ..ModelConfig::default()
            },
            bo: BoConfig {
                n_init: 5,
                n_iter: 2,
                n_mc: 24,
                n_grid: 16,
                ..BoConfig::default()
            },
            n_bootstrap: 64,
            ..TeslaConfig::default()
        };
        let ctrl = TeslaController::new(&trace, config).unwrap();
        (ctrl, trace)
    }

    #[test]
    fn cold_start_returns_default() {
        let (mut ctrl, _) = quick_controller();
        let short = Trace::with_sensors(2, 35);
        let sp = ctrl.decide(&short);
        assert_eq!(sp, 23.0);
    }

    #[test]
    fn decision_is_within_acu_bounds() {
        let (mut ctrl, trace) = quick_controller();
        let sp = ctrl.decide(&trace);
        assert!((20.0..=35.0).contains(&sp), "setpoint {sp}");
        assert!(ctrl.last_outcome().is_some());
    }

    #[test]
    fn monitor_fills_as_predictions_mature() {
        let (mut ctrl, trace) = quick_controller();
        // Decide at several successive prefixes of the trace so earlier
        // predictions mature.
        let full = trace.len();
        for end in (full - 30)..full {
            let mut prefix = Trace::with_sensors(2, 35);
            for t in 0..=end {
                prefix.push(
                    trace.avg_power[t],
                    &trace.acu_inlet.iter().map(|c| c[t]).collect::<Vec<_>>(),
                    &trace.dc_temps.iter().map(|c| c[t]).collect::<Vec<_>>(),
                    trace.setpoint[t],
                    trace.acu_energy[t],
                    trace.acu_power[t],
                );
            }
            ctrl.decide(&prefix);
        }
        assert!(
            ctrl.monitor_len() > 10,
            "monitor should have settled predictions, has {}",
            ctrl.monitor_len()
        );
    }

    #[test]
    fn reset_clears_state() {
        let (mut ctrl, trace) = quick_controller();
        ctrl.decide(&trace);
        ctrl.reset();
        assert!(ctrl.last_outcome().is_none());
    }

    #[test]
    fn invalid_cold_sensor_index_rejected() {
        let dcfg = DatasetConfig {
            days: 0.4,
            seed: 3,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let config = TeslaConfig {
            model: ModelConfig {
                horizon: 6,
                ..ModelConfig::default()
            },
            cold_sensors: vec![99],
            ..TeslaConfig::default()
        };
        assert!(TeslaController::new(&trace, config).is_err());
    }

    #[test]
    fn default_config_matches_table2() {
        let c = TeslaConfig::default();
        assert_eq!(c.model.horizon, 20);
        assert_eq!(c.d_allowed, Celsius::new(22.0));
        assert_eq!(c.safety_margin, DegC::new(0.5));
        assert_eq!(c.kappa, DegC::new(0.5));
        assert_eq!(c.smoothing, 5);
        assert_eq!(c.n_bootstrap, 500);
        assert_eq!(c.cold_sensors.len(), 11);
        assert_eq!(c.monitor_window, 1440);
    }

    #[test]
    fn online_recalibration_refits_on_cadence() {
        let dcfg = DatasetConfig {
            days: 0.5,
            seed: 13,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let config = TeslaConfig {
            model: ModelConfig {
                horizon: 6,
                ..ModelConfig::default()
            },
            bo: BoConfig {
                n_init: 4,
                n_iter: 1,
                n_mc: 16,
                n_grid: 11,
                ..BoConfig::default()
            },
            n_bootstrap: 32,
            retrain_every: Some(3),
            retrain_min_history: 50,
            ..TeslaConfig::default()
        };
        let mut ctrl = TeslaController::new(&trace, config).unwrap();
        for _ in 0..7 {
            let sp = ctrl.decide(&trace);
            assert!((20.0..=35.0).contains(&sp));
        }
        // Steps 3 and 6 should have retrained.
        assert_eq!(ctrl.retrain_count(), 2);
        ctrl.reset();
        assert_eq!(ctrl.retrain_count(), 0);
    }

    #[test]
    fn retraining_disabled_by_default() {
        let (mut ctrl, trace) = quick_controller();
        for _ in 0..4 {
            ctrl.decide(&trace);
        }
        assert_eq!(ctrl.retrain_count(), 0);
    }

    #[test]
    fn thermal_limit_adjusts_without_retraining() {
        // §8's deployment-flexibility claim: tightening the limit makes
        // the controller pick a colder set-point with the SAME model. A
        // limit no data-center air can satisfy forces the S_min backup.
        let (mut ctrl, trace) = quick_controller();
        let sp_loose = ctrl.decide(&trace);
        ctrl.reset();
        ctrl.set_thermal_limit(Celsius::new(10.0)); // unattainable: every candidate infeasible
        let sp_tight = ctrl.decide(&trace);
        assert!(
            sp_tight < sp_loose,
            "tighter limit ({sp_tight}) must give a colder set-point than loose ({sp_loose})"
        );
        assert_eq!(ctrl.config().d_allowed, Celsius::new(10.0));
    }

    #[test]
    fn safety_margin_gives_colder_setpoints() {
        let dcfg = DatasetConfig {
            days: 0.6,
            seed: 11,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let base = TeslaConfig {
            model: ModelConfig {
                horizon: 8,
                ..ModelConfig::default()
            },
            bo: BoConfig {
                n_init: 5,
                n_iter: 2,
                n_mc: 24,
                n_grid: 16,
                ..BoConfig::default()
            },
            n_bootstrap: 64,
            ..TeslaConfig::default()
        };
        let mut loose = TeslaController::new(
            &trace,
            TeslaConfig {
                safety_margin: DegC::new(0.0),
                ..base.clone()
            },
        )
        .unwrap();
        let mut tight = TeslaController::new(
            &trace,
            TeslaConfig {
                safety_margin: DegC::new(1.5),
                ..base
            },
        )
        .unwrap();
        let sp_loose = loose.decide(&trace);
        let sp_tight = tight.decide(&trace);
        assert!(
            sp_tight <= sp_loose,
            "margin must not raise the set-point: {sp_tight} vs {sp_loose}"
        );
    }

    #[test]
    fn kappa_is_clamped_nonnegative() {
        let (mut ctrl, _) = quick_controller();
        ctrl.set_kappa(DegC::new(-1.0));
        assert_eq!(ctrl.config().kappa, DegC::new(0.0));
        ctrl.set_kappa(DegC::new(0.75));
        assert_eq!(ctrl.config().kappa, DegC::new(0.75));
    }

    #[test]
    fn parallel_workers_pick_identical_setpoint_sequence() {
        // The tentpole determinism guarantee: the batched/parallel decide
        // path must produce the same set-point sequence as the serial
        // path for the same seed — worker count only changes wall-clock.
        let dcfg = DatasetConfig {
            days: 0.6,
            seed: 11,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let base = TeslaConfig {
            model: ModelConfig {
                horizon: 8,
                ..ModelConfig::default()
            },
            bo: BoConfig {
                n_init: 5,
                n_iter: 2,
                n_mc: 24,
                n_grid: 16,
                ..BoConfig::default()
            },
            n_bootstrap: 64,
            ..TeslaConfig::default()
        };
        let run = |workers: usize| -> Vec<f64> {
            let mut ctrl = TeslaController::new(
                &trace,
                TeslaConfig {
                    parallel_workers: workers,
                    ..base.clone()
                },
            )
            .unwrap();
            let full = trace.len();
            ((full - 10)..full)
                .map(|end| {
                    let mut prefix = Trace::with_sensors(2, 35);
                    for t in 0..=end {
                        prefix.push(
                            trace.avg_power[t],
                            &trace.acu_inlet.iter().map(|c| c[t]).collect::<Vec<_>>(),
                            &trace.dc_temps.iter().map(|c| c[t]).collect::<Vec<_>>(),
                            trace.setpoint[t],
                            trace.acu_energy[t],
                            trace.acu_power[t],
                        );
                    }
                    ctrl.decide(&prefix)
                })
                .collect()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn state_roundtrips_through_save_load() {
        let (mut ctrl, trace) = quick_controller();
        ctrl.decide(&trace);
        ctrl.decide(&trace);
        let bytes = ctrl.save_state().unwrap();
        let (mut other, _) = quick_controller();
        assert!(other.load_state(&bytes));
        // Loading must reconstruct the state bit-identically: re-saving
        // yields the same blob.
        assert_eq!(other.save_state().unwrap(), bytes);
    }

    #[test]
    fn truncated_or_misversioned_state_is_rejected() {
        let (mut ctrl, trace) = quick_controller();
        ctrl.decide(&trace);
        let bytes = ctrl.save_state().unwrap();
        let (mut other, _) = quick_controller();
        for cut in 0..bytes.len() {
            assert!(!other.load_state(&bytes[..cut]), "cut at {cut} accepted");
        }
        let mut future = bytes.clone();
        future[0] = 99; // unknown version tag
        assert!(!other.load_state(&future));
        // A failed load leaves the controller pristine: version tag,
        // three u64 counters, three empty-collection length prefixes.
        assert_eq!(other.save_state().unwrap().len(), 1 + 24 + 12);
    }

    #[test]
    fn uses_sim_config_defaults() {
        // Smoke check that the default simulator config aligns with the
        // default TESLA cold-sensor indexing.
        let sim = SimConfig::default();
        let cfg = TeslaConfig::default();
        assert!(cfg
            .cold_sensors
            .iter()
            .all(|&k| k < sim.n_cold_aisle_sensors));
    }
}
