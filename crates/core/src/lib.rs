#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! TESLA's control layer: the paper's primary contribution, plus the
//! three comparison controllers of Table 5 and the machinery to train and
//! evaluate all of them end-to-end on the simulated testbed.
//!
//! * [`tesla::TeslaController`] — the full pipeline of Figs. 5 and 7:
//!   DC time-series model → objective/constraint (Eqs. 5–9, including the
//!   cooling-interruption penalty `D`) → bootstrap-noise-aware constrained
//!   Bayesian optimizer → smoothing buffer → set-point execution.
//! * [`fixed::FixedController`] — the industry-practice fixed set-point
//!   (23 °C in the paper's evaluation).
//! * [`lazic::LazicController`] — Lazic et al. \[20\]: recursive
//!   autoregressive model + "highest set-point whose predicted max
//!   cold-aisle temperature stays below the limit", with the `S_min`
//!   backup.
//! * [`tsrl::TsrlController`] — TSRL \[8\]: offline RL (fitted Q iteration
//!   over discretized set-points) trained on logged traces with an
//!   energy reward and a thermal-violation cost, and *no* interruption
//!   term — which is exactly why it overshoots (§6.3).
//! * [`dataset`] — §5.1's data collection: random 12-hour load settings
//!   with a 20→35 °C set-point sweep at 0.5 °C per 5 minutes.
//! * [`experiment`] — closed-loop episode runner computing the Table 5
//!   metrics (cooling energy, thermal-safety violation, cooling
//!   interruption).
//! * [`replay`] — episode snapshot/replay: records the executed
//!   set-point sequence into a [`tesla_historian::MetricStore`] and
//!   re-executes it later (across restarts, through WAL recovery) for a
//!   bit-identical reproduction of the original episode.
//! * [`checkpoint`] — versioned, CRC-framed control-plane checkpoints
//!   with atomic writes, keep-N retention, and torn-write detection.
//! * [`resume`] — crash-resilient supervised episodes: periodic
//!   checkpointing, and resume that is bit-identical from the restored
//!   cursor (falling back to the `HoldLastSafe` posture when no valid
//!   checkpoint survives).
//! * [`runtime`] — the §4-faithful threaded producer/consumer deployment
//!   over a message queue, with safe-mode fallback when the consumer dies.
//! * [`supervisor`] — the robustness layer: decision watchdog, retrying
//!   Modbus writes, and a three-rung degradation ladder
//!   (normal → hold-last-safe → `S_min` safe mode) with hysteresis, plus
//!   a supervised episode runner that sanitizes telemetry through
//!   [`tesla_telemetry::HealthMonitor`]s and scores thermal safety on
//!   ground truth.
//!
//! # Example: a short fixed-set-point episode
//!
//! ```
//! use tesla_core::{run_episode, EpisodeConfig, FixedController};
//! use tesla_units::Celsius;
//!
//! let mut fixed = FixedController::new(Celsius::new(23.0));
//! let cfg = EpisodeConfig { minutes: 5, warmup_minutes: 2, ..Default::default() };
//! let result = run_episode(&mut fixed, &cfg)?;
//! assert_eq!(result.setpoints.len(), 5);
//! assert!(result.cooling_energy_kwh > 0.0);
//! # Ok::<(), tesla_core::CoreError>(())
//! ```

pub mod checkpoint;
pub mod controller;
pub mod dataset;
pub mod engine;
pub mod experiment;
pub mod fixed;
pub mod lazic;
pub mod objective;
pub mod replay;
pub mod resume;
pub mod runtime;
pub mod smoothing;
pub mod status;
pub mod supervisor;
pub mod tesla;
pub mod tsrl;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointStore, CHECKPOINT_VERSION};
pub use controller::Controller;
pub use engine::{MinuteOutcome, ZoneEpisode};
pub use experiment::{run_episode, EpisodeConfig, EvalResult};
pub use fixed::FixedController;
pub use lazic::LazicController;
pub use replay::{record_episode, replay_supervised_episode, ReplayController};
pub use resume::{
    resume_supervised_episode, run_checkpointed_episode, CheckpointPolicy, ResumeReport,
};
pub use runtime::run_episode_threaded;
pub use smoothing::SmoothingBuffer;
pub use status::{StatusBoard, StatusSnapshot, ZoneStatusRegistry};
pub use supervisor::{
    run_supervised_episode, ResumeState, Rung, StressReason, Supervisor, SupervisorConfig,
    SupervisorEvent, SupervisorState,
};
pub use tesla::{TeslaConfig, TeslaController};
pub use tsrl::{TsrlConfig, TsrlController};

/// The unified jittered-exponential-backoff policy (re-exported so
/// control-plane callers don't need a separate dependency line).
pub use tesla_backoff as backoff;

/// Errors from the control layer.
#[derive(Debug)]
pub enum CoreError {
    /// Simulator failure.
    Sim(tesla_sim::SimError),
    /// Forecasting failure.
    Forecast(tesla_forecast::ForecastError),
    /// Optimizer failure.
    Bo(tesla_bo::BoError),
    /// ML baseline failure.
    Ml(tesla_ml::MlError),
    /// Configuration / orchestration failure.
    Config(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulator: {e}"),
            CoreError::Forecast(e) => write!(f, "forecast: {e}"),
            CoreError::Bo(e) => write!(f, "optimizer: {e}"),
            CoreError::Ml(e) => write!(f, "ml: {e}"),
            CoreError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<tesla_sim::SimError> for CoreError {
    fn from(e: tesla_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}
impl From<tesla_forecast::ForecastError> for CoreError {
    fn from(e: tesla_forecast::ForecastError) -> Self {
        CoreError::Forecast(e)
    }
}
impl From<tesla_bo::BoError> for CoreError {
    fn from(e: tesla_bo::BoError) -> Self {
        CoreError::Bo(e)
    }
}
impl From<tesla_ml::MlError> for CoreError {
    fn from(e: tesla_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}
