//! TSRL \[8\] baseline: offline reinforcement learning over logged traces.
//!
//! Per §5.3, TSRL "directly outputs the set-point decision without
//! modeling DC temperature or cooling energy. It uses cooling energy
//! saving as its reward and thermal safety violation as its cost", trained
//! purely on historical traces. The original is a deep offline-RL method;
//! this reproduction implements fitted Q-iteration with a linear
//! per-action Q-function over discretized set-points — the behaviour the
//! paper analyzes (energy-greedy boundary riding with no interruption
//! awareness, §6.3) comes from the reward design, not the function class.

// analysis:allow-file(panic-free-control-path): feature extraction
// indexes history columns validated rectangular at entry; action
// index comes from argmax over a non-empty const table.
use crate::controller::Controller;
use crate::CoreError;
use tesla_forecast::Trace;
use tesla_linalg::{fit_ridge, Matrix, Ridge};
use tesla_units::{Celsius, NOMINAL_SETPOINT};

/// TSRL configuration.
#[derive(Debug, Clone)]
pub struct TsrlConfig {
    /// Action grid bounds `[S_min, S_max]`.
    pub bounds: (f64, f64),
    /// Action grid step, °C.
    pub action_step: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Fitted-Q iterations.
    pub n_iterations: usize,
    /// Cost weight per °C of cold-aisle limit violation.
    pub violation_cost: f64,
    /// Cold-aisle limit.
    pub d_allowed: Celsius,
    /// Cold-aisle sensor indices.
    pub cold_sensors: Vec<usize>,
    /// Ridge strength for the per-action Q regressions.
    pub alpha: f64,
    /// Set-point before enough history exists.
    pub cold_start_setpoint: Celsius,
    /// Energy-greedy tie-breaking: among actions whose Q lies within this
    /// fraction of the Q-range from the maximum, take the *highest*
    /// set-point. Offline RL with an energy reward is near-indifferent
    /// across the safe band, and this greedy resolution is what produces
    /// the boundary-riding behaviour the paper analyzes in §6.3.
    pub tie_epsilon: f64,
}

impl Default for TsrlConfig {
    fn default() -> Self {
        TsrlConfig {
            bounds: (20.0, 35.0),
            action_step: 0.5,
            gamma: 0.9,
            n_iterations: 15,
            // Deliberately mild: TSRL weighs violation as a soft cost
            // against energy, which is what drives it to the constraint
            // boundary (§6.3). A large weight would make it conservative
            // and erase the behaviour the paper analyzes.
            violation_cost: 0.12,
            d_allowed: Celsius::new(22.0),
            cold_sensors: (0..11).collect(),
            alpha: 1.0,
            cold_start_setpoint: NOMINAL_SETPOINT,
            tie_epsilon: 0.1,
        }
    }
}

/// State features: a compact summary of current telemetry.
const STATE_DIM: usize = 5;

/// The trained TSRL controller.
pub struct TsrlController {
    /// One linear Q-head per discretized action.
    q_heads: Vec<Option<Ridge>>,
    actions: Vec<f64>,
    config: TsrlConfig,
}

impl TsrlController {
    /// Trains with fitted Q-iteration on a logged sweep trace.
    pub fn new(trace: &Trace, config: TsrlConfig) -> Result<Self, CoreError> {
        if config.bounds.0 >= config.bounds.1 || config.action_step <= 0.0 {
            return Err(CoreError::Config("invalid TSRL bounds/action grid".into()));
        }
        if !(0.0..1.0).contains(&config.gamma) {
            return Err(CoreError::Config("gamma must be in [0,1)".into()));
        }
        trace.validate(8).map_err(CoreError::Forecast)?;

        let actions = Self::action_grid(&config);
        let n_actions = actions.len();

        // Transitions: (state_t, action taken at t -> executed at t+1,
        // reward observed at t+1, state_{t+1}).
        let t_len = trace.len();
        let mut states = Vec::with_capacity(t_len);
        for t in 0..t_len {
            states.push(Self::state_features_at(trace, t, &config));
        }
        let mut transitions: Vec<(usize, usize, f64, usize)> = Vec::new(); // (t, action idx, reward, t+1)
        for t in 2..t_len - 1 {
            let action = trace.setpoint[t + 1];
            let Some(ai) = Self::nearest_action(&actions, action, config.action_step) else {
                continue;
            };
            let reward = Self::reward(trace, t + 1, &config);
            transitions.push((t, ai, reward, t + 1));
        }
        if transitions.is_empty() {
            return Err(CoreError::Config(
                "no usable transitions in the trace".into(),
            ));
        }

        // Fitted Q-iteration.
        let mut q_heads: Vec<Option<Ridge>> = vec![None; n_actions];
        for _ in 0..config.n_iterations {
            // Targets under the current Q.
            let mut per_action_x: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n_actions];
            let mut per_action_y: Vec<Vec<f64>> = vec![Vec::new(); n_actions];
            for &(t, ai, r, tn) in &transitions {
                let next_v = Self::max_q(&q_heads, &states[tn]);
                let target = r + config.gamma * next_v;
                per_action_x[ai].push(states[t].clone());
                per_action_y[ai].push(target);
            }
            for ai in 0..n_actions {
                if per_action_x[ai].len() >= STATE_DIM + 2 {
                    let x = Matrix::from_rows(&per_action_x[ai])
                        .map_err(|e| CoreError::Config(e.to_string()))?;
                    if let Ok(model) = fit_ridge(&x, &per_action_y[ai], config.alpha) {
                        q_heads[ai] = Some(model);
                    }
                }
            }
        }
        Ok(TsrlController {
            q_heads,
            actions,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TsrlConfig {
        &self.config
    }

    /// The discretized action grid.
    pub fn actions(&self) -> &[f64] {
        &self.actions
    }

    /// Number of actions with a trained Q-head.
    pub fn trained_actions(&self) -> usize {
        self.q_heads.iter().filter(|h| h.is_some()).count()
    }

    fn action_grid(config: &TsrlConfig) -> Vec<f64> {
        let (lo, hi) = config.bounds;
        let n = ((hi - lo) / config.action_step).round() as usize + 1;
        (0..n).map(|i| lo + i as f64 * config.action_step).collect()
    }

    fn nearest_action(actions: &[f64], value: f64, step: f64) -> Option<usize> {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, &a) in actions.iter().enumerate() {
            let d = (a - value).abs();
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        // Only accept if the logged set-point is actually on-grid-ish.
        best.filter(|_| best_d <= step * 0.75)
    }

    /// Reward at step `t`: negative cooling energy minus the violation
    /// cost (no interruption term — the point of the comparison).
    fn reward(trace: &Trace, t: usize, config: &TsrlConfig) -> f64 {
        let mut max_cold = f64::NEG_INFINITY;
        for &k in &config.cold_sensors {
            if let Some(col) = trace.dc_temps.get(k) {
                max_cold = max_cold.max(col[t]);
            }
        }
        let violation = (max_cold - config.d_allowed.value()).max(0.0);
        -trace.acu_energy[t] - config.violation_cost * violation
    }

    /// State features at trace index `t`.
    fn state_features_at(trace: &Trace, t: usize, config: &TsrlConfig) -> Vec<f64> {
        let mut max_cold = f64::NEG_INFINITY;
        for &k in &config.cold_sensors {
            if let Some(col) = trace.dc_temps.get(k) {
                max_cold = max_cold.max(col[t]);
            }
        }
        let inlet_avg =
            trace.acu_inlet.iter().map(|c| c[t]).sum::<f64>() / trace.acu_inlet.len().max(1) as f64;
        let power = trace.avg_power[t];
        let power_trend = if t >= 5 {
            power - trace.avg_power[t - 5]
        } else {
            0.0
        };
        let setpoint = trace.setpoint[t];
        vec![max_cold, inlet_avg, power, power_trend, setpoint]
    }

    fn max_q(q_heads: &[Option<Ridge>], state: &[f64]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut any = false;
        for head in q_heads.iter().flatten() {
            best = best.max(head.predict(state));
            any = true;
        }
        if any {
            best
        } else {
            0.0
        }
    }
}

impl Controller for TsrlController {
    fn name(&self) -> &str {
        "tsrl"
    }

    fn decide(&mut self, history: &Trace) -> f64 {
        if history.len() < 6 {
            return self.config.cold_start_setpoint.value();
        }
        let t = history.len() - 1;
        let state = Self::state_features_at(history, t, &self.config);
        let qs: Vec<Option<f64>> = self
            .q_heads
            .iter()
            .map(|head| head.as_ref().map(|h| h.predict(&state)))
            .collect();
        let (mut qmax, mut qmin) = (f64::NEG_INFINITY, f64::INFINITY);
        for q in qs.iter().flatten() {
            qmax = qmax.max(*q);
            qmin = qmin.min(*q);
        }
        if !qmax.is_finite() {
            return self.config.cold_start_setpoint.value();
        }
        // Energy-greedy tie-breaking: highest action within ε of the max.
        let threshold = qmax - self.config.tie_epsilon * (qmax - qmin).max(1e-9);
        for (ai, q) in qs.iter().enumerate().rev() {
            if let Some(q) = q {
                if *q >= threshold {
                    return self.actions[ai];
                }
            }
        }
        self.config.cold_start_setpoint.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_sweep_trace, DatasetConfig};

    fn controller() -> (TsrlController, Trace) {
        let dcfg = DatasetConfig {
            days: 1.0,
            seed: 31,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let ctrl = TsrlController::new(&trace, TsrlConfig::default()).unwrap();
        (ctrl, trace)
    }

    #[test]
    fn trains_q_heads_across_the_action_grid() {
        let (ctrl, _) = controller();
        assert_eq!(ctrl.actions().len(), 31); // 20..=35 at 0.5
        assert!(
            ctrl.trained_actions() > 15,
            "sweep data should cover most actions, got {}",
            ctrl.trained_actions()
        );
    }

    #[test]
    fn decision_is_a_grid_action() {
        let (mut ctrl, trace) = controller();
        let sp = ctrl.decide(&trace);
        assert!((20.0..=35.0).contains(&sp));
        let on_grid = ctrl.actions().iter().any(|&a| (a - sp).abs() < 1e-9);
        assert!(on_grid, "decision {sp} must be a discretized action");
    }

    #[test]
    fn prefers_energy_saving_actions() {
        // TSRL's defining behaviour: rewards push it toward high
        // set-points (less energy), stopping only where the soft
        // violation cost bites. Across a realistic closed-loop episode
        // its average decision must sit above the fixed-23 C baseline.
        let (ctrl, _) = controller();
        let mut boxed: Box<dyn Controller> = Box::new(ctrl);
        let cfg = crate::experiment::EpisodeConfig {
            setting: tesla_workload::LoadSetting::Medium,
            minutes: 90,
            warmup_minutes: 20,
            seed: 5,
            ..crate::experiment::EpisodeConfig::default()
        };
        let r = crate::experiment::run_episode(boxed.as_mut(), &cfg).unwrap();
        let mean_sp = tesla_linalg::stats::mean(&r.setpoints);
        assert!(mean_sp > 23.0, "energy-greedy policy averaged {mean_sp}");
    }

    #[test]
    fn cold_start_default() {
        let (mut ctrl, _) = controller();
        assert_eq!(ctrl.decide(&Trace::with_sensors(2, 35)), 23.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let dcfg = DatasetConfig {
            days: 0.3,
            seed: 1,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        assert!(TsrlController::new(
            &trace,
            TsrlConfig {
                bounds: (35.0, 20.0),
                ..TsrlConfig::default()
            }
        )
        .is_err());
        assert!(TsrlController::new(
            &trace,
            TsrlConfig {
                gamma: 1.5,
                ..TsrlConfig::default()
            }
        )
        .is_err());
        assert!(TsrlController::new(
            &trace,
            TsrlConfig {
                action_step: 0.0,
                ..TsrlConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn reward_penalizes_violations() {
        let (_, trace) = controller();
        let cfg = TsrlConfig::default();
        // Craft two one-step comparisons via direct calls.
        let r_normal = TsrlController::reward(&trace, 10, &cfg);
        // Same energy but inflated cold-aisle temp → lower reward.
        let mut hot = trace.clone();
        for &k in &cfg.cold_sensors {
            hot.dc_temps[k][10] = 30.0;
        }
        let r_hot = TsrlController::reward(&hot, 10, &cfg);
        assert!(r_hot < r_normal);
    }
}
