//! Training-data collection (§5.1, "Datasets, preprocessing and metrics").
//!
//! "For every 12 hours, we randomly pick a server load setting. During
//! this period, the set-point is swept from 20 °C to 35 °C, which changes
//! 0.5 °C every 5 minutes. We repeat this operation for 1 month" — the
//! training trace; another two weeks form the test trace.
//!
//! A 20→35 sweep at that rate takes 150 minutes, so within each 12-hour
//! segment the sweep bounces (triangle wave) to keep visiting the whole
//! range, which is the natural reading of "repeat this operation".

use crate::CoreError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tesla_forecast::Trace;
use tesla_sim::{Observation, SimConfig, Testbed};
use tesla_units::{Celsius, NOMINAL_SETPOINT};
use tesla_workload::{DiurnalProfile, LoadSetting, Orchestrator};

/// Sweep-dataset generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Simulator configuration (Table 1 defaults).
    pub sim: SimConfig,
    /// Trace length in days (the paper uses 30 train + 14 test; smaller
    /// values keep debug runs fast).
    pub days: f64,
    /// Sweep increment, °C (0.5 in §5.1).
    pub sweep_step_c: f64,
    /// Dwell per sweep level, minutes (5 in §5.1).
    pub sweep_dwell_min: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            sim: SimConfig::default(),
            days: 2.0,
            sweep_step_c: 0.5,
            sweep_dwell_min: 5,
            seed: 0,
        }
    }
}

/// Appends one simulator observation to a forecasting trace.
pub fn push_observation(trace: &mut Trace, obs: &Observation) {
    trace.push(
        obs.avg_server_power_kw,
        &obs.acu_inlet_temps,
        &obs.dc_temps,
        obs.setpoint,
        obs.acu_energy_kwh,
        obs.acu_power_kw,
    );
}

/// Generates a sweep trace per §5.1: 12-hour segments with a random load
/// setting each, set-point bouncing across `[S_min, S_max]`.
pub fn generate_sweep_trace(cfg: &DatasetConfig) -> Result<Trace, CoreError> {
    if cfg.days <= 0.0 || cfg.sweep_step_c <= 0.0 || cfg.sweep_dwell_min == 0 {
        return Err(CoreError::Config(
            "days, sweep step and dwell must be positive".into(),
        ));
    }
    let minutes = (cfg.days * 24.0 * 60.0).round() as usize;
    let mut testbed = Testbed::new(cfg.sim.clone(), cfg.seed)?;
    let mut orch = Orchestrator::new(cfg.sim.n_servers);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD5);
    let mut trace = Trace::with_sensors(cfg.sim.n_acu_sensors, cfg.sim.n_dc_sensors);

    let segment_min = 12 * 60;
    let (smin, smax) = (cfg.sim.setpoint_min.value(), cfg.sim.setpoint_max.value());
    let mut profile = DiurnalProfile::new(random_setting(&mut rng), segment_min as f64 * 60.0);

    // Brief warm-up so the trace starts from realistic thermal state.
    testbed.write_setpoint(NOMINAL_SETPOINT);
    let idle = vec![0.0; cfg.sim.n_servers];
    testbed.warm_up(&idle, 30)?;

    let mut setpoint = smin;
    let mut direction = 1.0;
    for m in 0..minutes {
        let seg_pos = m % segment_min;
        if m > 0 && seg_pos == 0 {
            profile = DiurnalProfile::new(random_setting(&mut rng), segment_min as f64 * 60.0);
        }
        // Triangle sweep: step every `sweep_dwell_min` minutes.
        if m % cfg.sweep_dwell_min == 0 && m > 0 {
            setpoint += direction * cfg.sweep_step_c;
            if setpoint >= smax {
                setpoint = smax;
                direction = -1.0;
            } else if setpoint <= smin {
                setpoint = smin;
                direction = 1.0;
            }
        }
        testbed.write_setpoint(Celsius::new(setpoint));
        let target = profile.sample(seg_pos as f64 * 60.0, &mut rng);
        let utils = orch.tick(cfg.sim.sample_period_s, target, &mut rng);
        let obs = testbed.step_sample(&utils)?;
        push_observation(&mut trace, &obs);
    }
    Ok(trace)
}

fn random_setting(rng: &mut StdRng) -> LoadSetting {
    match rng.random_range(0..3) {
        0 => LoadSetting::Idle,
        1 => LoadSetting::Medium,
        _ => LoadSetting::High,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(days: f64, seed: u64) -> DatasetConfig {
        DatasetConfig {
            days,
            seed,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn trace_has_requested_length_and_shape() {
        let cfg = small_cfg(0.05, 1); // 72 minutes
        let trace = generate_sweep_trace(&cfg).unwrap();
        assert_eq!(trace.len(), 72);
        assert_eq!(trace.n_acu_sensors(), 2);
        assert_eq!(trace.n_dc_sensors(), 35);
        trace.validate(72).unwrap();
    }

    #[test]
    fn sweep_covers_a_range_of_setpoints() {
        let cfg = small_cfg(0.3, 2); // 432 minutes: sweep reaches ~41 levels
        let trace = generate_sweep_trace(&cfg).unwrap();
        let min = trace.setpoint.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = trace
            .setpoint
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min <= 21.0, "sweep floor {min}");
        assert!(max >= 28.0, "sweep reached {max}");
        // Steps are 0.5 °C (allow for the register quantization).
        for w in trace.setpoint.windows(2) {
            assert!((w[1] - w[0]).abs() < 0.5 + 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_sweep_trace(&small_cfg(0.03, 7)).unwrap();
        let b = generate_sweep_trace(&small_cfg(0.03, 7)).unwrap();
        assert_eq!(a.setpoint, b.setpoint);
        assert_eq!(a.avg_power, b.avg_power);
        let c = generate_sweep_trace(&small_cfg(0.03, 8)).unwrap();
        assert_ne!(a.avg_power, c.avg_power);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(generate_sweep_trace(&small_cfg(0.0, 1)).is_err());
        let mut cfg = small_cfg(0.1, 1);
        cfg.sweep_dwell_min = 0;
        assert!(generate_sweep_trace(&cfg).is_err());
    }

    #[test]
    fn energy_column_is_positive() {
        let trace = generate_sweep_trace(&small_cfg(0.05, 3)).unwrap();
        assert!(trace.acu_energy.iter().all(|&e| e >= 0.0));
        assert!(trace.acu_energy.iter().any(|&e| e > 0.0));
    }
}
