//! Episode snapshot and deterministic replay through the historian.
//!
//! A supervised episode's *executed* set-point sequence fully determines
//! its trajectory: the testbed, workload, and health monitors are all
//! seeded, so re-running the same [`EpisodeConfig`] while forcing each
//! minute's set-point reproduces the original episode bit for bit. This
//! module records that sequence into any [`MetricStore`] (typically a
//! durable [`tesla_historian::Historian`]) and replays it later — across
//! a process restart and a WAL recovery — for post-incident analysis.
//!
//! Executed set-points are already 0.1 °C-quantized by the Modbus write
//! path, and that quantization is idempotent, so the replayed sequence
//! survives the record → store → recover → re-execute round trip exactly.

use crate::controller::Controller;
use crate::experiment::{EpisodeConfig, EvalResult};
use crate::supervisor::{run_supervised_episode, Supervisor};
use crate::CoreError;
use tesla_forecast::Trace;
use tesla_historian::MetricStore;
use tesla_units::NOMINAL_SETPOINT;

/// Metric name under which an episode's executed set-points are stored.
pub fn episode_setpoint_metric(episode_id: &str) -> String {
    format!("episode.{episode_id}.setpoint_c")
}

/// Records an episode's executed set-point sequence into `store`.
///
/// Sample times are the metered minute index in seconds (minute 0 at
/// t = 0 s), so the series aligns with the historian's retention and
/// downsampling clocks. Recording twice under the same id appends —
/// use distinct ids per episode.
pub fn record_episode(store: &dyn MetricStore, episode_id: &str, result: &EvalResult) {
    let metric = episode_setpoint_metric(episode_id);
    let samples: Vec<(f64, f64)> = result
        .setpoints
        .iter()
        .enumerate()
        .map(|(m, &sp)| (m as f64 * 60.0, sp))
        .collect();
    store.insert_batch(&metric, &samples);
}

/// Reads back an episode's recorded set-point sequence.
// lint:allow(no-raw-f64-in-public-api): bulk telemetry record
pub fn recorded_setpoints(store: &dyn MetricStore, episode_id: &str) -> Vec<f64> {
    store.values(&episode_setpoint_metric(episode_id))
}

/// A controller that re-executes a recorded set-point sequence verbatim.
///
/// Once the recording is exhausted it keeps proposing the last recorded
/// value (or the nominal set-point if the recording was empty), so a
/// replay that runs longer than the recording degrades gracefully.
#[derive(Debug, Clone)]
pub struct ReplayController {
    setpoints: Vec<f64>,
    next: usize,
}

impl ReplayController {
    /// Builds a replay controller from an explicit sequence.
    // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    pub fn new(setpoints: Vec<f64>) -> Self {
        ReplayController { setpoints, next: 0 }
    }

    /// Loads the recording for `episode_id` from `store`.
    ///
    /// Fails with [`CoreError::Config`] when nothing was recorded under
    /// that id (a silent empty replay would look like a clean episode).
    pub fn from_store(store: &dyn MetricStore, episode_id: &str) -> Result<Self, CoreError> {
        let setpoints = recorded_setpoints(store, episode_id);
        if setpoints.is_empty() {
            return Err(CoreError::Config(format!(
                "no recorded set-points for episode id {episode_id:?}"
            )));
        }
        Ok(ReplayController::new(setpoints))
    }

    /// Number of recorded minutes still to be replayed.
    pub fn remaining(&self) -> usize {
        self.setpoints.len().saturating_sub(self.next)
    }
}

impl Controller for ReplayController {
    fn name(&self) -> &str {
        "replay"
    }

    fn decide(&mut self, _history: &Trace) -> f64 {
        let sp = self
            .setpoints
            .get(self.next)
            .or(self.setpoints.last())
            .copied()
            .unwrap_or(NOMINAL_SETPOINT.value());
        self.next = (self.next + 1).min(self.setpoints.len());
        sp
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

/// Replays a recorded episode through the supervised runner.
///
/// `config` must match the recorded episode (same seed, sim, setting,
/// warm-up) for the replay to be bit-identical; the supervisor runs live,
/// so a recording made under faults replays through the same ladder.
pub fn replay_supervised_episode(
    store: &dyn MetricStore,
    episode_id: &str,
    supervisor: &mut Supervisor,
    config: &EpisodeConfig,
) -> Result<EvalResult, CoreError> {
    let mut controller = ReplayController::from_store(store, episode_id)?;
    run_supervised_episode(&mut controller, supervisor, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;
    use crate::supervisor::SupervisorConfig;
    use std::sync::Arc;
    use tesla_historian::{Historian, HistorianConfig};
    use tesla_units::Celsius;
    use tesla_workload::LoadSetting;

    fn episode_config(minutes: usize) -> EpisodeConfig {
        EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes,
            warmup_minutes: 20,
            seed: 42,
            ..EpisodeConfig::default()
        }
    }

    #[test]
    fn replay_controller_walks_then_holds_tail() {
        let mut ctrl = ReplayController::new(vec![23.0, 24.0]);
        let trace = Trace::with_sensors(1, 1);
        assert_eq!(ctrl.decide(&trace), 23.0);
        assert_eq!(ctrl.remaining(), 1);
        assert_eq!(ctrl.decide(&trace), 24.0);
        assert_eq!(ctrl.decide(&trace), 24.0, "tail holds the last value");
        ctrl.reset();
        assert_eq!(ctrl.decide(&trace), 23.0);
    }

    #[test]
    fn empty_recording_is_an_error_not_a_silent_episode() {
        let store = Historian::in_memory(HistorianConfig::default());
        assert!(ReplayController::from_store(&store, "missing").is_err());
        let mut ctrl = ReplayController::new(Vec::new());
        assert_eq!(
            ctrl.decide(&Trace::with_sensors(1, 1)),
            NOMINAL_SETPOINT.value()
        );
    }

    #[test]
    fn record_then_replay_in_memory_is_bit_identical() {
        let cfg = episode_config(45);
        let mut ctrl = FixedController::new(Celsius::new(23.4));
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let original = run_supervised_episode(&mut ctrl, &mut sup, &cfg).unwrap();

        let store = Historian::in_memory(HistorianConfig::default());
        record_episode(&store, "ep-mem", &original);

        let mut sup2 = Supervisor::new(SupervisorConfig::default());
        let replayed = replay_supervised_episode(&store, "ep-mem", &mut sup2, &cfg).unwrap();

        assert_eq!(original.setpoints, replayed.setpoints);
        assert_eq!(original.cold_aisle_max, replayed.cold_aisle_max);
        assert_eq!(original.cooling_energy_kwh, replayed.cooling_energy_kwh);
    }

    #[test]
    fn replay_survives_disk_round_trip_and_wal_recovery() {
        let dir = std::env::temp_dir().join(format!(
            "tesla-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let cfg = episode_config(40);
        let mut ctrl = FixedController::new(Celsius::new(24.1));
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let original = run_supervised_episode(&mut ctrl, &mut sup, &cfg).unwrap();

        // Record into a durable historian, flush, and drop it — the data
        // now lives only in the WAL on disk.
        {
            let (store, _) = Historian::open(&dir, HistorianConfig::default()).unwrap();
            record_episode(&store, "ep-disk", &original);
            store.flush().unwrap();
        }

        // Reopen: WAL recovery rebuilds the series, then replay.
        let (recovered, stats) = Historian::open(&dir, HistorianConfig::default()).unwrap();
        assert!(stats.records > 0, "recovery must have replayed the WAL");
        let store: Arc<dyn MetricStore> = Arc::new(recovered);
        let mut sup2 = Supervisor::new(SupervisorConfig::default());
        let replayed = replay_supervised_episode(&*store, "ep-disk", &mut sup2, &cfg).unwrap();

        assert_eq!(
            original.setpoints, replayed.setpoints,
            "recovered replay must be bit-identical"
        );
        assert_eq!(original.cold_aisle_max, replayed.cold_aisle_max);
        assert_eq!(original.inlet_avg, replayed.inlet_avg);
        assert_eq!(original.safe_mode_minutes, replayed.safe_mode_minutes);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
