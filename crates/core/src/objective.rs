//! The optimizer's objective and constraint (Eqs. 5–9).
//!
//! Objective (maximized): `O = −(Ê + w·D)` where `Ê` is the predicted
//! cooling energy over the horizon and `D` the cooling-interruption
//! penalty of Eq. 6 — the summed PID residual error wherever the
//! set-point exceeds the (sensor-averaged) predicted inlet temperature
//! by more than `κ`. Constraint (feasible iff ≤ 0): Eq. 9, the worst
//! predicted cold-aisle sensor reading minus `d_allowed`.
//!
//! The paper works in min-max-normalized units where energy and residual
//! degrees are commensurate; in physical units we expose the explicit
//! weight `w` (kWh per °C·step) so the trade-off is visible and
//! ablatable.

// analysis:allow-file(panic-free-control-path): penalty terms index
// prediction vectors whose horizon length the model guarantees.
use tesla_forecast::Prediction;
use tesla_units::{Celsius, DegC};

/// Eq. 6–7: cooling-interruption proxy `D` for a constant set-point.
///
/// `D = Σ_j U_j`, `U_j = s − avg(â_j)` when that residual exceeds `κ`,
/// else 0. Positive residual means the set-point sits above the inlet
/// temperature — the PID is about to stop delivering cold air.
// lint:allow(no-raw-f64-in-public-api): bulk prediction matrix in, dimensionless penalty out
pub fn interruption_penalty(setpoint: Celsius, inlet_pred: &[Vec<f64>], kappa: DegC) -> f64 {
    if inlet_pred.is_empty() {
        return 0.0;
    }
    let l = inlet_pred[0].len();
    let n = inlet_pred.len() as f64;
    let mut d = 0.0;
    for j in 0..l {
        let avg: f64 = inlet_pred.iter().map(|s| s[j]).sum::<f64>() / n;
        let residual = (setpoint - Celsius::new(avg)).value();
        if residual > kappa.value() {
            d += residual;
        }
    }
    d
}

/// Eq. 8 (negated for maximization): `O = −(Ê + w·D)`.
pub fn objective(
    prediction: &Prediction,
    setpoint: Celsius,
    kappa: DegC,
    interruption_weight: f64,
) -> f64 {
    let d = interruption_penalty(setpoint, &prediction.inlet, kappa);
    -(prediction.energy.value() + interruption_weight * d)
}

/// Eq. 9: `C = max_{cold sensors, steps} d̂ − d_allowed` (feasible iff ≤ 0).
// lint:allow(no-raw-f64-in-public-api): dimensionless constraint margin out
pub fn constraint(prediction: &Prediction, cold_sensors: &[usize], d_allowed: Celsius) -> f64 {
    prediction.max_over_sensors(cold_sensors.iter().copied()) - d_allowed.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    use tesla_units::KilowattHours;

    fn pred(inlet: Vec<Vec<f64>>, dc: Vec<Vec<f64>>, energy: f64) -> Prediction {
        Prediction {
            power: vec![],
            inlet,
            dc,
            energy: KilowattHours::new(energy),
        }
    }

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn k(v: f64) -> DegC {
        DegC::new(v)
    }

    #[test]
    fn no_penalty_when_setpoint_below_inlet() {
        let p = pred(vec![vec![25.0; 4]], vec![], 0.5);
        assert_eq!(interruption_penalty(c(24.0), &p.inlet, k(0.5)), 0.0);
    }

    #[test]
    fn penalty_accumulates_over_steps() {
        // Set-point 26, inlet 24 → residual 2 at each of 4 steps, κ=0.5.
        let p = pred(vec![vec![24.0; 4]], vec![], 0.5);
        assert_eq!(interruption_penalty(c(26.0), &p.inlet, k(0.5)), 8.0);
    }

    #[test]
    fn kappa_zero_forbids_any_positive_residual() {
        // §3.3: "Setting κ = 0 does not allow any interruption."
        let p = pred(vec![vec![24.0; 3]], vec![], 0.5);
        assert!(interruption_penalty(c(24.1), &p.inlet, k(0.0)) > 0.0);
        assert_eq!(interruption_penalty(c(24.1), &p.inlet, k(0.5)), 0.0);
    }

    #[test]
    fn residual_averages_across_acu_sensors() {
        // Sensors read 23 and 25 → average 24; set-point 25 → residual 1.
        let p = pred(vec![vec![23.0; 2], vec![25.0; 2]], vec![], 0.5);
        assert_eq!(interruption_penalty(c(25.0), &p.inlet, k(0.5)), 2.0);
    }

    #[test]
    fn objective_prefers_low_energy_without_interruption() {
        let cheap = pred(vec![vec![26.0; 4]], vec![], 0.4);
        let costly = pred(vec![vec![26.0; 4]], vec![], 0.9);
        let o_cheap = objective(&cheap, c(25.0), k(0.5), 0.1);
        let o_costly = objective(&costly, c(25.0), k(0.5), 0.1);
        assert!(o_cheap > o_costly);
    }

    #[test]
    fn interruption_penalty_can_dominate_energy_savings() {
        // An interrupting set-point that saves 0.3 kWh must still lose
        // with the default-scale weight.
        let interrupting = pred(vec![vec![24.0; 20]], vec![], 0.2);
        let safe = pred(vec![vec![24.0; 20]], vec![], 0.5);
        let o_int = objective(&interrupting, c(27.0), k(0.5), 0.1); // D = 3*20 = 60
        let o_safe = objective(&safe, c(24.0), k(0.5), 0.1);
        assert!(o_safe > o_int);
    }

    #[test]
    fn constraint_uses_worst_cold_sensor() {
        let p = pred(
            vec![],
            vec![vec![20.0, 21.5], vec![19.0, 23.0], vec![30.0, 30.0]],
            0.0,
        );
        // Only sensors 0 and 1 are cold-aisle; sensor 2's 30 °C must be
        // ignored.
        let con = constraint(&p, &[0, 1], c(22.0));
        assert!((con - 1.0).abs() < 1e-12); // 23 − 22
        assert!(constraint(&p, &[0], c(22.0)) < 0.0);
    }

    #[test]
    fn empty_inlet_prediction_is_harmless() {
        assert_eq!(interruption_penalty(c(30.0), &[], k(0.5)), 0.0);
    }
}
