//! Crash-resilient supervised episodes: periodic checkpointing and
//! bit-identical resume.
//!
//! [`run_checkpointed_episode`] runs the supervised closed loop while
//! persisting a [`Checkpoint`] every `every_k` metered minutes and on
//! every ladder transition. After a crash, [`resume_supervised_episode`]
//! restores the newest valid checkpoint and continues the episode so
//! that, from the restored cursor on, the executed set-point sequence is
//! **bit-identical** to an uninterrupted run.
//!
//! The trick is that a checkpoint does *not* try to serialize the plant
//! (testbed, workload, RNG, health monitors): all of those are seeded,
//! so re-running the episode loop while forcing the recorded executed
//! set-points rebuilds them exactly (the same property the episode
//! replay module proves). The checkpoint carries only what the replay
//! cannot reproduce — the supervisor's ladder state (wall-clock stress
//! such as watchdog trips is not reproducible offline) and the
//! controller's per-decision state — and installs it wholesale at the
//! cursor.
//!
//! When no valid checkpoint exists (all torn, corrupt, future-versioned,
//! or missing), the resume falls back to restarting the episode in the
//! `HoldLastSafe` posture: safe, but not bit-identical. The report says
//! which path was taken.

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::controller::Controller;
use crate::experiment::{EpisodeConfig, EvalResult};
use crate::supervisor::{
    run_supervised_episode_with, EngineHooks, EngineMinute, ResumeState, StressReason, Supervisor,
};
use crate::CoreError;
use std::path::PathBuf;
use std::time::Instant;

/// When the checkpointed episode runner persists snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Write a checkpoint every `every_k` metered minutes (`0` disables
    /// the cadence; rung-transition checkpoints may still fire).
    pub every_k: usize,
    /// Also checkpoint whenever the degradation ladder moves, so the
    /// post-restart posture reflects the freshest stress evidence.
    pub on_rung_change: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_k: 10,
            on_rung_change: true,
        }
    }
}

/// How a [`resume_supervised_episode`] call recovered.
#[derive(Debug, Clone)]
pub struct ResumeReport {
    /// Metered-minute cursor of the checkpoint resumed from; `None` when
    /// no usable checkpoint existed.
    pub resumed_from: Option<usize>,
    /// Path of the checkpoint file used.
    pub checkpoint_path: Option<PathBuf>,
    /// True when the episode restarted from scratch in the
    /// `HoldLastSafe` posture because no usable checkpoint existed.
    pub fell_back_to_hold: bool,
    /// Wall-clock seconds from the resume call until the control loop
    /// was live again (prefix replay + state install complete).
    pub recovery_seconds: f64, // lint:allow(no-raw-f64-in-public-api): wall-clock diagnostic
}

/// Builds the checkpoint a live engine minute describes.
fn checkpoint_at(config: &EpisodeConfig, mm: &EngineMinute<'_>) -> Checkpoint {
    let done = mm.minute + 1;
    Checkpoint {
        seed: config.seed,
        minutes: config.minutes as u64,
        warmup_minutes: config.warmup_minutes as u64,
        controller: mm.controller.name().to_string(),
        cursor: done as u64,
        setpoints: mm.setpoints.to_vec(),
        supervisor: mm.supervisor.state(),
        controller_state: mm.controller.save_state(),
    }
}

/// Writes a checkpoint if this minute is due one. Failures are counted
/// and logged, never propagated: losing a snapshot must not take down
/// the control loop whose resilience it exists to provide.
fn write_if_due(
    config: &EpisodeConfig,
    store: &CheckpointStore,
    policy: &CheckpointPolicy,
    mm: &EngineMinute<'_>,
) {
    let done = mm.minute + 1;
    let cadence_due = policy.every_k > 0 && done.is_multiple_of(policy.every_k);
    let rung_due = policy.on_rung_change && mm.rung_changed;
    if !cadence_due && !rung_due {
        return;
    }
    if store.write(&checkpoint_at(config, mm)).is_err() {
        tesla_obs::counter!("checkpoint_write_failures_total").inc();
        tesla_obs::event("checkpoint_write_failed", &[("minute", mm.minute as f64)]);
    }
}

/// Runs one supervised episode with periodic checkpointing.
///
/// `abort_after: Some(m)` simulates a crash: the loop stops before
/// metered minute `m` runs, exactly as if the process died there. The
/// chaos harness and the kill-point tests use this; production callers
/// pass `None`.
pub fn run_checkpointed_episode(
    controller: &mut dyn Controller,
    supervisor: &mut Supervisor,
    config: &EpisodeConfig,
    store: &CheckpointStore,
    policy: &CheckpointPolicy,
    abort_after: Option<usize>,
) -> Result<EvalResult, CoreError> {
    let mut observer = |mm: EngineMinute<'_>| write_if_due(config, store, policy, &mm);
    run_supervised_episode_with(
        controller,
        supervisor,
        config,
        EngineHooks {
            abort_after,
            observer: Some(&mut observer),
            ..EngineHooks::default()
        },
    )
}

/// Resumes a supervised episode from the newest valid checkpoint in
/// `store`, continuing to checkpoint on the same policy (so repeated
/// crashes keep resuming from fresher and fresher snapshots).
///
/// From the restored cursor the executed set-point sequence is
/// bit-identical to an uninterrupted run. A checkpoint whose fingerprint
/// (seed, episode length, warm-up, controller name) does not match
/// `config` is treated as absent. With no usable checkpoint the episode
/// restarts from minute 0 in the `HoldLastSafe` posture — thermally
/// safe, but flagged in the report because bit-identity is lost.
///
/// `abort_after` simulates a crash mid-resume, as in
/// [`run_checkpointed_episode`].
pub fn resume_supervised_episode(
    controller: &mut dyn Controller,
    supervisor: &mut Supervisor,
    config: &EpisodeConfig,
    store: &CheckpointStore,
    policy: &CheckpointPolicy,
    abort_after: Option<usize>,
) -> Result<(EvalResult, ResumeReport), CoreError> {
    let start = Instant::now();
    let found = store
        .latest_valid()
        .map_err(|e| CoreError::Config(format!("checkpoint store: {e}")))?;
    let usable = found.filter(|(ckpt, _)| {
        let fits = ckpt.matches(
            config.seed,
            config.minutes as u64,
            config.warmup_minutes as u64,
            controller.name(),
        ) && ckpt.cursor as usize <= config.minutes;
        if !fits {
            tesla_obs::event("checkpoint_fingerprint_mismatch", &[]);
        }
        fits
    });

    // Recovery ends when the first live (post-cursor) minute completes;
    // the engine's observer fires exactly then.
    let mut recovery_seconds = None::<f64>;
    let record_recovery = |recovery_seconds: &mut Option<f64>| {
        if recovery_seconds.is_none() {
            let secs = start.elapsed().as_secs_f64();
            tesla_obs::histogram!("restart_recovery_seconds").observe(secs);
            *recovery_seconds = Some(secs);
        }
    };

    let (result, resumed_from, checkpoint_path, fell_back) = match usable {
        Some((ckpt, path)) => {
            let resume_state = ResumeState {
                supervisor: ckpt.supervisor.clone(),
                controller: ckpt.controller_state.clone(),
            };
            let mut observer = |mm: EngineMinute<'_>| {
                record_recovery(&mut recovery_seconds);
                write_if_due(config, store, policy, &mm);
            };
            let result = run_supervised_episode_with(
                controller,
                supervisor,
                config,
                EngineHooks {
                    prefix: &ckpt.setpoints,
                    resume: Some(&resume_state),
                    abort_after,
                    observer: Some(&mut observer),
                    ..EngineHooks::default()
                },
            )?;
            (result, Some(ckpt.cursor as usize), Some(path), false)
        }
        None => {
            tesla_obs::counter!("restart_hold_fallbacks_total").inc();
            let mut observer = |mm: EngineMinute<'_>| {
                record_recovery(&mut recovery_seconds);
                write_if_due(config, store, policy, &mm);
            };
            let result = run_supervised_episode_with(
                controller,
                supervisor,
                config,
                EngineHooks {
                    start_elevated: Some(StressReason::ConsumerLost),
                    abort_after,
                    observer: Some(&mut observer),
                    ..EngineHooks::default()
                },
            )?;
            (result, None, None, true)
        }
    };

    let report = ResumeReport {
        resumed_from,
        checkpoint_path,
        fell_back_to_hold: fell_back,
        recovery_seconds: recovery_seconds.unwrap_or_else(|| start.elapsed().as_secs_f64()),
    };
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;
    use crate::supervisor::{run_supervised_episode, Rung, SupervisorConfig};
    use crate::tesla::{TeslaConfig, TeslaController};
    use tesla_bo::BoConfig;
    use tesla_forecast::ModelConfig;
    use tesla_sim::{ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow};
    use tesla_units::Celsius;
    use tesla_workload::LoadSetting;

    fn temp_store(tag: &str) -> (CheckpointStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "tesla-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (CheckpointStore::open(&dir, 3).unwrap(), dir)
    }

    fn episode_config(minutes: usize) -> EpisodeConfig {
        EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes,
            warmup_minutes: 20,
            seed: 42,
            ..EpisodeConfig::default()
        }
    }

    fn quick_supervisor() -> Supervisor {
        Supervisor::new(SupervisorConfig::default())
    }

    #[test]
    fn resume_is_bit_identical_at_kill_points() {
        let cfg = episode_config(40);
        let mut baseline_ctrl = FixedController::new(Celsius::new(23.4));
        let mut baseline_sup = quick_supervisor();
        let baseline = run_supervised_episode(&mut baseline_ctrl, &mut baseline_sup, &cfg).unwrap();

        let policy = CheckpointPolicy {
            every_k: 2,
            on_rung_change: true,
        };
        for kill in [3usize, 14, 29, 39] {
            let (store, dir) = temp_store(&format!("kill{kill}"));
            let mut ctrl = FixedController::new(Celsius::new(23.4));
            let mut sup = quick_supervisor();
            run_checkpointed_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, Some(kill))
                .unwrap();

            // "Process restart": fresh controller, fresh supervisor.
            let mut ctrl2 = FixedController::new(Celsius::new(23.4));
            let mut sup2 = quick_supervisor();
            let (resumed, report) =
                resume_supervised_episode(&mut ctrl2, &mut sup2, &cfg, &store, &policy, None)
                    .unwrap();
            assert!(!report.fell_back_to_hold, "kill at {kill} had checkpoints");
            assert_eq!(
                baseline.setpoints, resumed.setpoints,
                "kill at {kill}: set-points must be bit-identical"
            );
            assert_eq!(baseline.cold_aisle_max, resumed.cold_aisle_max);
            assert_eq!(baseline.cooling_energy_kwh, resumed.cooling_energy_kwh);
            assert_eq!(baseline.tsv_percent, resumed.tsv_percent);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_is_bit_identical_under_faults() {
        // Register rejections drive ladder transitions (and transition
        // checkpoints); the resumed run must still match bit for bit.
        let mut cfg = episode_config(45);
        // Windows are in sim minutes (warm-up included): metered minutes
        // 25..35 with a 20-minute warm-up.
        cfg.faults = FaultPlan {
            actuators: vec![ActuatorFault {
                kind: ActuatorFaultKind::RejectedRegister,
                window: FaultWindow::new(45.0, 55.0),
            }],
            ..FaultPlan::none()
        };
        let mut baseline_ctrl = FixedController::new(Celsius::new(24.0));
        let mut baseline_sup = quick_supervisor();
        let baseline = run_supervised_episode(&mut baseline_ctrl, &mut baseline_sup, &cfg).unwrap();

        let policy = CheckpointPolicy::default();
        let (store, dir) = temp_store("faults");
        let mut ctrl = FixedController::new(Celsius::new(24.0));
        let mut sup = quick_supervisor();
        run_checkpointed_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, Some(32)).unwrap();

        let mut ctrl2 = FixedController::new(Celsius::new(24.0));
        let mut sup2 = quick_supervisor();
        let (resumed, report) =
            resume_supervised_episode(&mut ctrl2, &mut sup2, &cfg, &store, &policy, None).unwrap();
        assert!(report.resumed_from.is_some());
        assert_eq!(baseline.setpoints, resumed.setpoints);
        assert_eq!(baseline.safe_mode_minutes, resumed.safe_mode_minutes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_is_bit_identical_with_tesla_controller() {
        // The stateful controller: pending predictions, the error
        // monitor, the smoothing buffer, and online retrains all cross
        // the crash. Small model/optimizer so the test stays quick.
        let cfg = EpisodeConfig {
            warmup_minutes: 12,
            ..episode_config(24)
        };
        let tesla_cfg = TeslaConfig {
            model: ModelConfig {
                horizon: 6,
                ..ModelConfig::default()
            },
            bo: BoConfig {
                n_init: 4,
                n_iter: 1,
                n_mc: 16,
                n_grid: 11,
                ..BoConfig::default()
            },
            n_bootstrap: 32,
            retrain_every: Some(5),
            retrain_min_history: 15,
            seed: 7,
            ..TeslaConfig::default()
        };
        let train = crate::dataset::generate_sweep_trace(&crate::dataset::DatasetConfig {
            days: 0.4,
            seed: 3,
            ..crate::dataset::DatasetConfig::default()
        })
        .unwrap();

        let mut baseline_ctrl = TeslaController::new(&train, tesla_cfg.clone()).unwrap();
        let mut baseline_sup = quick_supervisor();
        let baseline = run_supervised_episode(&mut baseline_ctrl, &mut baseline_sup, &cfg).unwrap();

        let policy = CheckpointPolicy {
            every_k: 4,
            on_rung_change: true,
        };
        let (store, dir) = temp_store("tesla");
        let mut ctrl = TeslaController::new(&train, tesla_cfg.clone()).unwrap();
        let mut sup = quick_supervisor();
        run_checkpointed_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, Some(17)).unwrap();

        // Restart: the controller is re-fit from the same offline sweep
        // (deterministic), then checkpointed state is installed on top.
        let mut ctrl2 = TeslaController::new(&train, tesla_cfg).unwrap();
        let mut sup2 = quick_supervisor();
        let (resumed, report) =
            resume_supervised_episode(&mut ctrl2, &mut sup2, &cfg, &store, &policy, None).unwrap();
        assert_eq!(report.resumed_from, Some(16));
        assert_eq!(
            baseline.setpoints, resumed.setpoints,
            "TESLA resume must be bit-identical"
        );
        assert_eq!(baseline.cooling_energy_kwh, resumed.cooling_energy_kwh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_newest_checkpoint_falls_back_to_older_and_stays_identical() {
        let cfg = episode_config(40);
        let mut baseline_ctrl = FixedController::new(Celsius::new(23.4));
        let mut baseline_sup = quick_supervisor();
        let baseline = run_supervised_episode(&mut baseline_ctrl, &mut baseline_sup, &cfg).unwrap();

        let policy = CheckpointPolicy {
            every_k: 5,
            on_rung_change: true,
        };
        let (store, dir) = temp_store("torn");
        let mut ctrl = FixedController::new(Celsius::new(23.4));
        let mut sup = quick_supervisor();
        run_checkpointed_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, Some(23)).unwrap();

        // Tear the newest file mid-frame.
        let files = store.list().unwrap();
        assert!(files.len() >= 2, "need at least two checkpoints");
        let newest = files.last().unwrap();
        let bytes = std::fs::read(newest).unwrap();
        std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();

        let mut ctrl2 = FixedController::new(Celsius::new(23.4));
        let mut sup2 = quick_supervisor();
        let (resumed, report) =
            resume_supervised_episode(&mut ctrl2, &mut sup2, &cfg, &store, &policy, None).unwrap();
        assert_eq!(report.resumed_from, Some(15), "must use the older snapshot");
        assert_eq!(baseline.setpoints, resumed.setpoints);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_checkpoint_falls_back_to_hold_posture() {
        let cfg = episode_config(30);
        let (store, dir) = temp_store("empty");
        let policy = CheckpointPolicy::default();
        let mut ctrl = FixedController::new(Celsius::new(23.4));
        let mut sup = quick_supervisor();
        let (result, report) =
            resume_supervised_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, None).unwrap();
        assert!(report.fell_back_to_hold);
        assert_eq!(report.resumed_from, None);
        assert_eq!(result.setpoints.len(), 30);
        // The episode must have started on the hold rung, visible in the
        // transition log's first event.
        let first = sup.events().first().expect("start_elevated logs an event");
        assert_eq!(first.to, Rung::HoldLastSafe);
        assert_eq!(first.minute, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_treated_as_no_checkpoint() {
        let cfg = episode_config(25);
        let policy = CheckpointPolicy::default();
        let (store, dir) = temp_store("fp");
        let mut ctrl = FixedController::new(Celsius::new(23.4));
        let mut sup = quick_supervisor();
        run_checkpointed_episode(&mut ctrl, &mut sup, &cfg, &store, &policy, Some(15)).unwrap();

        // Resume under a different seed: the checkpoint must be refused.
        let other = EpisodeConfig { seed: 43, ..cfg };
        let mut ctrl2 = FixedController::new(Celsius::new(23.4));
        let mut sup2 = quick_supervisor();
        let (_, report) =
            resume_supervised_episode(&mut ctrl2, &mut sup2, &other, &store, &policy, None)
                .unwrap();
        assert!(report.fell_back_to_hold);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
