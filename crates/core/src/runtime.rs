//! The §4-faithful threaded deployment: a telemetry *producer* and a
//! controller *consumer* communicating over a message queue.
//!
//! "Our main function is implemented using two Python processes, a
//! producer and a consumer that communicate over a message queue. One
//! process periodically pulls testbed information … and pushes it onto
//! the message queue. The consumer process pulls the data from the queue
//! and runs it through TESLA … TESLA writes the value in the register of
//! ACU's PID controller."
//!
//! Here the producer thread owns the testbed (stepping physics and
//! collecting observations into the shared [`MetricStore`] — the in-RAM
//! `TsdbStore` or the durable `tesla_historian::Historian`) and the
//! consumer thread owns the controller; set-points travel back on a
//! second channel and are applied before the next sampling period.
//!
//! Robustness (this reproduction's supervised extension): telemetry
//! snapshots are pushed with the queue's drop-oldest policy so a stalled
//! consumer can never block the producer; set-point writes go through the
//! supervisor's retrying Modbus path; and if the consumer dies (panic or
//! hang-up) the producer *continues the episode at the safe-mode
//! set-point* instead of aborting — a dead optimizer must not mean dead
//! cooling control.

use crate::controller::Controller;
use crate::dataset::push_observation;
use crate::experiment::{EpisodeConfig, EvalResult};
use crate::supervisor::{StressReason, Supervisor, SupervisorConfig};
use crate::CoreError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use tesla_forecast::Trace;
use tesla_sim::Testbed;
use tesla_telemetry::{Collector, MetricStore, TelemetryQueue};
use tesla_units::{Celsius, NOMINAL_SETPOINT};
use tesla_workload::{DiurnalProfile, Orchestrator};

/// How long the producer waits for a decision before treating the
/// consumer as lost. Generous: a blown budget here means the thread is
/// gone or wedged, not merely slow.
const DECISION_WAIT: Duration = Duration::from_secs(60);

/// Runs an episode with the producer/consumer split of §4. Telemetry is
/// additionally collected into `store` (the InfluxDB stand-in), which the
/// caller can inspect afterwards.
///
/// A consumer that panics or hangs up mid-episode is survived: the
/// producer escalates straight to safe mode and finishes the episode at
/// the safe set-point, reporting the time spent there in
/// [`EvalResult::safe_mode_minutes`].
pub fn run_episode_threaded(
    mut controller: Box<dyn Controller>,
    config: &EpisodeConfig,
    store: Arc<dyn MetricStore>,
) -> Result<EvalResult, CoreError> {
    let mut testbed = Testbed::new(config.sim.clone(), config.seed)?;
    testbed.set_fault_plan(config.faults.clone());
    let mut orch = Orchestrator::with_placement(config.sim.n_servers, config.placement);
    let mut profile = DiurnalProfile::new(config.setting, config.minutes as f64 * 60.0);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xEE);
    let mut supervisor = Supervisor::new(SupervisorConfig {
        d_allowed: config.d_allowed,
        ..SupervisorConfig::default()
    });

    controller.reset();
    testbed.write_setpoint(NOMINAL_SETPOINT);

    // Queue of telemetry snapshots (producer → consumer) and decided
    // set-points (consumer → producer). Capacity 4: bounded backpressure,
    // drop-oldest on overflow.
    let obs_q: TelemetryQueue<Trace> = TelemetryQueue::new(4);
    let sp_q: TelemetryQueue<f64> = TelemetryQueue::new(4);

    let name = controller.name().to_string();
    let obs_rx = obs_q.receiver();
    let sp_tx = sp_q.sender();
    let consumer = std::thread::spawn(move || {
        // Consumer: one decision per snapshot, until the producer hangs up.
        while let Ok(history) = obs_rx.recv() {
            let sp = controller.decide(&history);
            if sp_tx.send(sp).is_err() {
                break;
            }
        }
    });

    let result = producer_loop(
        &mut testbed,
        &mut orch,
        &mut profile,
        &mut rng,
        config,
        store.as_ref(),
        &obs_q,
        &sp_q,
        &mut supervisor,
        name,
    );
    // Hang up the snapshot queue so the consumer exits, then reap it. A
    // panicked consumer was already survived by the safe-mode fallback;
    // the join result is only bookkeeping.
    drop(obs_q);
    let _ = consumer.join();
    result
}

#[allow(clippy::too_many_arguments)]
fn producer_loop(
    testbed: &mut Testbed,
    orch: &mut Orchestrator,
    profile: &mut DiurnalProfile,
    rng: &mut StdRng,
    config: &EpisodeConfig,
    store: &dyn MetricStore,
    obs_q: &TelemetryQueue<Trace>,
    sp_q: &TelemetryQueue<f64>,
    supervisor: &mut Supervisor,
    name: String,
) -> Result<EvalResult, CoreError> {
    let mut trace = Trace::with_sensors(config.sim.n_acu_sensors, config.sim.n_dc_sensors);

    for _ in 0..config.warmup_minutes {
        let target = profile.sample(0.0, rng);
        let utils = orch.tick(config.sim.sample_period_s, target, rng);
        let obs = testbed.step_sample(&utils)?;
        Collector::collect(store, &obs);
        push_observation(&mut trace, &obs);
    }
    let metered_from = trace.len();

    let mut cooling_energy_kwh = 0.0;
    let mut violations = 0usize;
    let mut interrupted = 0.0;
    let mut setpoints = Vec::new();
    let mut inlet_avg = Vec::new();
    let mut cold_aisle_max = Vec::new();
    let mut acu_power = Vec::new();
    let mut avg_server_power = Vec::new();
    let mut server_energy_kwh = 0.0;
    let mut consumer_lost = false;

    let spec = config.sim.setpoint_range();
    for m in 0..config.minutes {
        if !consumer_lost {
            // Producer → consumer: current history snapshot (drop-oldest,
            // so a wedged consumer can't stall the control loop). Then
            // consumer → producer: the decided set-point; waiting for the
            // decision each period mirrors the paper's synchronous
            // 1-minute control step.
            let decided = obs_q
                .push_latest(trace.clone())
                .ok()
                .and_then(|_| sp_q.pop_timeout(DECISION_WAIT).ok());
            match decided {
                Some(sp) => {
                    // Clamp to the writable spec (matching the synchronous
                    // runner's device-side clamp), then write through the
                    // retrying fault-aware path. A failed write leaves the
                    // previous set-point latched.
                    let sp = supervisor.resolve_setpoint(spec.clamp(Celsius::new(sp)));
                    let _ = supervisor.write_with_retry(testbed, sp);
                }
                None => {
                    // Consumer dead or wedged past any plausible decision
                    // time: degrade to safe mode for the rest of the
                    // episode rather than abandoning the plant mid-run.
                    consumer_lost = true;
                    supervisor.force_safe_mode(m, StressReason::ConsumerLost);
                }
            }
        }
        if consumer_lost {
            // The decision process is gone for good: keep the stress
            // signal asserted so clean minutes cannot "recover" a
            // controller that no longer exists, and hold S_min.
            supervisor.note_stress(StressReason::ConsumerLost);
            let safe = spec.clamp(supervisor.config().safe_setpoint);
            let _ = supervisor.write_with_retry(testbed, safe);
        }

        let target = profile.sample(m as f64 * 60.0, rng);
        let utils = orch.tick(config.sim.sample_period_s, target, rng);
        let obs = testbed.step_sample(&utils)?;
        Collector::collect(store, &obs);

        cooling_energy_kwh += obs.acu_energy_kwh;
        if obs.cold_aisle_max > config.d_allowed.value() {
            violations += 1;
        }
        interrupted += obs.interrupted_frac;
        setpoints.push(testbed.setpoint().value());
        inlet_avg.push(
            obs.acu_inlet_temps.iter().sum::<f64>() / obs.acu_inlet_temps.len().max(1) as f64,
        );
        cold_aisle_max.push(obs.cold_aisle_max);
        acu_power.push(obs.acu_power_kw);
        avg_server_power.push(obs.avg_server_power_kw);
        server_energy_kwh +=
            obs.server_powers_kw.iter().sum::<f64>() * config.sim.sample_period_s / 3600.0;
        push_observation(&mut trace, &obs);

        // Close the supervised minute. Only infrastructure stress (failed
        // writes, consumer loss) feeds the ladder here: this runtime does
        // not sanitize sensors, so raw thermal readings are not a reliable
        // stress signal — thermal- and telemetry-aware supervision lives
        // in `run_supervised_episode`. Fault-free runs therefore execute
        // physics identical to the synchronous runner.
        supervisor.end_of_minute(m, 0.0, Celsius::new(f64::NEG_INFINITY), testbed.setpoint());
    }

    Ok(EvalResult {
        controller: name,
        setting: config.setting,
        cooling_energy_kwh,
        tsv_percent: 100.0 * violations as f64 / config.minutes.max(1) as f64,
        ci_percent: 100.0 * interrupted / config.minutes.max(1) as f64,
        setpoints,
        inlet_avg,
        cold_aisle_max,
        acu_power,
        avg_server_power,
        server_energy_kwh,
        trace,
        metered_from,
        safe_mode_minutes: supervisor.safe_mode_minutes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;
    use tesla_telemetry::{metric, TsdbStore};
    use tesla_workload::LoadSetting;

    #[test]
    fn threaded_loop_matches_metrics_shape() {
        let store = Arc::new(TsdbStore::new());
        let dyn_store: Arc<dyn MetricStore> = Arc::clone(&store) as _;
        let cfg = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes: 40,
            warmup_minutes: 10,
            seed: 5,
            ..EpisodeConfig::default()
        };
        let result = run_episode_threaded(
            Box::new(FixedController::new(Celsius::new(23.0))),
            &cfg,
            dyn_store,
        )
        .unwrap();
        assert_eq!(result.setpoints.len(), 40);
        assert!(result.cooling_energy_kwh > 0.0);
        assert_eq!(result.safe_mode_minutes, 0);
        // The store saw every sample (warm-up + metered).
        assert_eq!(store.len(metric::ACU_POWER), 50);
        assert_eq!(store.len(&metric::dc_temp(0)), 50);
    }

    #[test]
    fn threaded_and_synchronous_runs_agree_for_memoryless_controllers() {
        // A fixed controller's decisions don't depend on timing, so both
        // runtimes must produce identical physics.
        let store = Arc::new(TsdbStore::new());
        let cfg = EpisodeConfig {
            setting: LoadSetting::High,
            minutes: 30,
            warmup_minutes: 10,
            seed: 77,
            ..EpisodeConfig::default()
        };
        let threaded = run_episode_threaded(
            Box::new(FixedController::new(Celsius::new(24.0))),
            &cfg,
            store,
        )
        .unwrap();
        let mut sync_ctrl = FixedController::new(Celsius::new(24.0));
        let synchronous = crate::experiment::run_episode(&mut sync_ctrl, &cfg).unwrap();
        assert_eq!(threaded.cooling_energy_kwh, synchronous.cooling_energy_kwh);
        assert_eq!(threaded.cold_aisle_max, synchronous.cold_aisle_max);
    }

    /// A controller that panics mid-episode, killing the consumer thread.
    struct PanickyController {
        decisions_left: u32,
    }

    impl Controller for PanickyController {
        fn name(&self) -> &str {
            "panicky"
        }
        fn decide(&mut self, _history: &Trace) -> f64 {
            if self.decisions_left == 0 {
                panic!("controller crashed");
            }
            self.decisions_left -= 1;
            24.0
        }
    }

    #[test]
    fn dead_consumer_degrades_to_safe_mode_instead_of_aborting() {
        let store = Arc::new(TsdbStore::new());
        let cfg = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes: 30,
            warmup_minutes: 10,
            seed: 5,
            ..EpisodeConfig::default()
        };
        let result = run_episode_threaded(
            Box::new(PanickyController { decisions_left: 5 }),
            &cfg,
            store,
        )
        .unwrap();
        // The episode ran to completion with finite metrics...
        assert_eq!(result.setpoints.len(), 30);
        assert!(result.cooling_energy_kwh.is_finite() && result.cooling_energy_kwh > 0.0);
        // ...and the tail of the run held the safe-mode set-point.
        assert!(result.safe_mode_minutes > 0, "safe mode must have engaged");
        assert_eq!(*result.setpoints.last().unwrap(), 20.0);
    }
}
