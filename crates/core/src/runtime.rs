//! The §4-faithful threaded deployment: a telemetry *producer* and a
//! controller *consumer* communicating over a message queue.
//!
//! "Our main function is implemented using two Python processes, a
//! producer and a consumer that communicate over a message queue. One
//! process periodically pulls testbed information … and pushes it onto
//! the message queue. The consumer process pulls the data from the queue
//! and runs it through TESLA … TESLA writes the value in the register of
//! ACU's PID controller."
//!
//! Here the producer thread owns the testbed (stepping physics and
//! collecting observations into the shared [`TsdbStore`]) and the
//! consumer thread owns the controller; set-points travel back on a
//! second channel and are applied before the next sampling period.

use crate::controller::Controller;
use crate::dataset::push_observation;
use crate::experiment::{EpisodeConfig, EvalResult};
use crate::CoreError;
use crossbeam::channel::bounded;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tesla_forecast::Trace;
use tesla_sim::Testbed;
use tesla_telemetry::{Collector, TsdbStore};
use tesla_workload::{DiurnalProfile, Orchestrator};

/// Runs an episode with the producer/consumer split of §4. Telemetry is
/// additionally collected into `store` (the InfluxDB stand-in), which the
/// caller can inspect afterwards.
pub fn run_episode_threaded(
    mut controller: Box<dyn Controller>,
    config: &EpisodeConfig,
    store: Arc<TsdbStore>,
) -> Result<EvalResult, CoreError> {
    let mut testbed = Testbed::new(config.sim.clone(), config.seed)?;
    let mut orch = Orchestrator::with_placement(config.sim.n_servers, config.placement);
    let mut profile = DiurnalProfile::new(config.setting, config.minutes as f64 * 60.0);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xEE);

    controller.reset();
    testbed.write_setpoint(23.0);

    // Queue of telemetry snapshots (producer → consumer) and decided
    // set-points (consumer → producer). Capacity 4: bounded backpressure.
    let (obs_tx, obs_rx) = bounded::<Trace>(4);
    let (sp_tx, sp_rx) = bounded::<f64>(4);

    let name = controller.name().to_string();
    let consumer = std::thread::spawn(move || {
        // Consumer: one decision per snapshot, until the producer hangs up.
        while let Ok(history) = obs_rx.recv() {
            let sp = controller.decide(&history);
            if sp_tx.send(sp).is_err() {
                break;
            }
        }
    });

    // Producer loop. Any early return must still hang up the queue so the
    // consumer exits, hence the inner function + explicit drop + join.
    let result = producer_loop(
        &mut testbed,
        &mut orch,
        &mut profile,
        &mut rng,
        config,
        &store,
        &obs_tx,
        &sp_rx,
        name,
    );
    drop(obs_tx);
    if consumer.join().is_err() {
        return Err(CoreError::Config("consumer thread panicked".into()));
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn producer_loop(
    testbed: &mut Testbed,
    orch: &mut Orchestrator,
    profile: &mut DiurnalProfile,
    rng: &mut StdRng,
    config: &EpisodeConfig,
    store: &TsdbStore,
    obs_tx: &crossbeam::channel::Sender<Trace>,
    sp_rx: &crossbeam::channel::Receiver<f64>,
    name: String,
) -> Result<EvalResult, CoreError> {
    let mut trace = Trace::with_sensors(config.sim.n_acu_sensors, config.sim.n_dc_sensors);

    for _ in 0..config.warmup_minutes {
        let target = profile.sample(0.0, rng);
        let utils = orch.tick(config.sim.sample_period_s, target, rng);
        let obs = testbed.step_sample(&utils)?;
        Collector::collect(store, &obs);
        push_observation(&mut trace, &obs);
    }
    let metered_from = trace.len();

    let mut cooling_energy_kwh = 0.0;
    let mut violations = 0usize;
    let mut interrupted = 0.0;
    let mut setpoints = Vec::new();
    let mut inlet_avg = Vec::new();
    let mut cold_aisle_max = Vec::new();
    let mut acu_power = Vec::new();
    let mut avg_server_power = Vec::new();
    let mut server_energy_kwh = 0.0;

    for m in 0..config.minutes {
        // Producer → consumer: current history snapshot.
        obs_tx
            .send(trace.clone())
            .map_err(|_| CoreError::Config("consumer hung up".into()))?;
        // Consumer → producer: the decided set-point. Waiting for the
        // decision each period mirrors the paper's synchronous 1-minute
        // control step.
        let sp = sp_rx
            .recv()
            .map_err(|_| CoreError::Config("consumer hung up".into()))?;
        testbed.write_setpoint(sp);

        let target = profile.sample(m as f64 * 60.0, rng);
        let utils = orch.tick(config.sim.sample_period_s, target, rng);
        let obs = testbed.step_sample(&utils)?;
        Collector::collect(store, &obs);

        cooling_energy_kwh += obs.acu_energy_kwh;
        if obs.cold_aisle_max > config.d_allowed {
            violations += 1;
        }
        interrupted += obs.interrupted_frac;
        setpoints.push(testbed.setpoint());
        inlet_avg.push(
            obs.acu_inlet_temps.iter().sum::<f64>() / obs.acu_inlet_temps.len().max(1) as f64,
        );
        cold_aisle_max.push(obs.cold_aisle_max);
        acu_power.push(obs.acu_power_kw);
        avg_server_power.push(obs.avg_server_power_kw);
        server_energy_kwh +=
            obs.server_powers_kw.iter().sum::<f64>() * config.sim.sample_period_s / 3600.0;
        push_observation(&mut trace, &obs);
    }

    Ok(EvalResult {
        controller: name,
        setting: config.setting,
        cooling_energy_kwh,
        tsv_percent: 100.0 * violations as f64 / config.minutes.max(1) as f64,
        ci_percent: 100.0 * interrupted / config.minutes.max(1) as f64,
        setpoints,
        inlet_avg,
        cold_aisle_max,
        acu_power,
        avg_server_power,
        server_energy_kwh,
        trace,
        metered_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;
    use tesla_telemetry::metric;
    use tesla_workload::LoadSetting;

    #[test]
    fn threaded_loop_matches_metrics_shape() {
        let store = Arc::new(TsdbStore::new());
        let cfg = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes: 40,
            warmup_minutes: 10,
            seed: 5,
            ..EpisodeConfig::default()
        };
        let result =
            run_episode_threaded(Box::new(FixedController::new(23.0)), &cfg, Arc::clone(&store))
                .unwrap();
        assert_eq!(result.setpoints.len(), 40);
        assert!(result.cooling_energy_kwh > 0.0);
        // The store saw every sample (warm-up + metered).
        assert_eq!(store.len(metric::ACU_POWER), 50);
        assert_eq!(store.len(&metric::dc_temp(0)), 50);
    }

    #[test]
    fn threaded_and_synchronous_runs_agree_for_memoryless_controllers() {
        // A fixed controller's decisions don't depend on timing, so both
        // runtimes must produce identical physics.
        let store = Arc::new(TsdbStore::new());
        let cfg = EpisodeConfig {
            setting: LoadSetting::High,
            minutes: 30,
            warmup_minutes: 10,
            seed: 77,
            ..EpisodeConfig::default()
        };
        let threaded =
            run_episode_threaded(Box::new(FixedController::new(24.0)), &cfg, store).unwrap();
        let mut sync_ctrl = FixedController::new(24.0);
        let synchronous = crate::experiment::run_episode(&mut sync_ctrl, &cfg).unwrap();
        assert_eq!(threaded.cooling_energy_kwh, synchronous.cooling_energy_kwh);
        assert_eq!(threaded.cold_aisle_max, synchronous.cold_aisle_max);
    }
}
