//! The Lazic et al. \[20\] MPC baseline (§5.3, §6.3).
//!
//! "Lazic et al. relies on an autoregressive linear modeling for DC
//! temperature prediction, based on which a gradient-descent optimizer
//! chooses the highest set-point such that the predicted maximum cold
//! aisle temperature stays below the specified 22 °C limit" — and, when
//! no feasible set-point exists, "a backup strategy of selecting
//! S_min = 20 °C" kicks in (Fig. 11a).
//!
//! The decision variable is scalar, so the gradient-descent search is
//! implemented as an equivalent top-down scan over the set-point grid
//! (same argmax, no local-minimum risk). Crucially — and this is the
//! paper's point — the objective contains *only* cooling energy (higher
//! set-point = cheaper), with no interruption term, which drives the ACU
//! to the constraint boundary and into repeated cooling interruptions.

use crate::controller::Controller;
use crate::CoreError;
use tesla_forecast::{RecursiveAr, Trace};
use tesla_units::{Celsius, NOMINAL_SETPOINT};

/// Lazic baseline configuration.
#[derive(Debug, Clone)]
pub struct LazicConfig {
    /// Prediction horizon in steps.
    pub horizon: usize,
    /// AR order (past frames consumed by the collective model).
    pub order: usize,
    /// Cold-aisle limit.
    pub d_allowed: Celsius,
    /// Cold-aisle sensor indices.
    pub cold_sensors: Vec<usize>,
    /// Set-point search bounds `[S_min, S_max]`.
    pub bounds: (f64, f64),
    /// Search grid step, °C.
    pub grid_step: f64,
    /// Maximum set-point change per decision, °C. The paper's optimizer
    /// is gradient descent warm-started from the previous decision, so it
    /// moves a few steps per control period rather than jumping globally.
    pub max_step_c: f64,
    /// Set-point before enough history exists.
    pub cold_start_setpoint: Celsius,
}

impl Default for LazicConfig {
    fn default() -> Self {
        LazicConfig {
            // A short re-planning lookahead: the MPC re-decides every
            // minute and only vets candidates over the next few minutes.
            // Interruption-driven temperature ramps play out over tens of
            // minutes (Fig. 3), which is precisely the dynamics this
            // controller fails to anticipate (§6.3).
            horizon: 5,
            order: 2,
            d_allowed: Celsius::new(22.0),
            cold_sensors: (0..11).collect(),
            bounds: (20.0, 35.0),
            grid_step: 0.25,
            max_step_c: 1.0,
            cold_start_setpoint: NOMINAL_SETPOINT,
        }
    }
}

/// The fitted Lazic controller.
pub struct LazicController {
    model: RecursiveAr,
    config: LazicConfig,
    last_setpoint: Option<f64>,
}

impl LazicController {
    /// Trains the recursive AR model (OLS, per \[20\]) on a sweep trace.
    pub fn new(trace: &Trace, config: LazicConfig) -> Result<Self, CoreError> {
        if config.bounds.0 >= config.bounds.1 || config.grid_step <= 0.0 {
            return Err(CoreError::Config("invalid Lazic bounds/grid".into()));
        }
        let model = RecursiveAr::fit(trace, config.order, 0.0)?;
        Ok(LazicController {
            model,
            config,
            last_setpoint: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &LazicConfig {
        &self.config
    }

    /// Predicted max cold-aisle temperature over the horizon for a
    /// candidate set-point.
    fn predicted_max(&self, history: &Trace, setpoint: f64) -> Option<f64> {
        let now = history.len().checked_sub(1)?;
        let lag = self.config.order.max(2);
        let window = history.window_at(now, lag).ok()?;
        let sps = vec![setpoint; self.config.horizon];
        let rollout = self.model.predict_rollout(&window, &sps).ok()?;
        let mut max = f64::NEG_INFINITY;
        for &k in &self.config.cold_sensors {
            if let Some(series) = rollout.get(k) {
                for &v in series {
                    max = max.max(v);
                }
            }
        }
        Some(max)
    }
}

impl Controller for LazicController {
    fn name(&self) -> &str {
        "lazic"
    }

    fn decide(&mut self, history: &Trace) -> f64 {
        let lag = self.config.order.max(2);
        if history.len() < lag {
            return self.config.cold_start_setpoint.value();
        }
        // Gradient-descent equivalent: search within max_step_c of the
        // previous decision, from the top down, for the highest set-point
        // whose predicted max cold-aisle temperature stays below the
        // limit.
        let (lo, hi) = self.config.bounds;
        let prev = self
            .last_setpoint
            .unwrap_or_else(|| self.config.cold_start_setpoint.value());
        let hi = hi.min(prev + self.config.max_step_c);
        let lo_local = lo.max(prev - self.config.max_step_c);
        let mut s = hi;
        while s >= lo_local - 1e-9 {
            match self.predicted_max(history, s) {
                Some(max) if max < self.config.d_allowed.value() => {
                    self.last_setpoint = Some(s);
                    return s;
                }
                Some(_) => {}
                None => return self.config.cold_start_setpoint.value(),
            }
            s -= self.config.grid_step;
        }
        // No feasible set-point within reach: S_min backup (§6.3).
        self.last_setpoint = Some(lo);
        lo
    }

    fn reset(&mut self) {
        self.last_setpoint = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_sweep_trace, DatasetConfig};

    fn controller() -> (LazicController, Trace) {
        let dcfg = DatasetConfig {
            days: 0.5,
            seed: 21,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let ctrl = LazicController::new(&trace, LazicConfig::default()).unwrap();
        (ctrl, trace)
    }

    #[test]
    fn decision_in_bounds() {
        let (mut ctrl, trace) = controller();
        let sp = ctrl.decide(&trace);
        assert!((20.0..=35.0).contains(&sp), "setpoint {sp}");
    }

    #[test]
    fn rides_the_boundary_by_construction() {
        // Whatever it picks, the next-lower grid point must also be
        // feasible (it picked the HIGHEST feasible one) — verify the scan
        // semantics by checking its own model's predictions.
        let (mut ctrl, trace) = controller();
        let sp = ctrl.decide(&trace);
        if sp > 20.0 && sp < 35.0 {
            let m_here = ctrl.predicted_max(&trace, sp).unwrap();
            let m_above = ctrl.predicted_max(&trace, sp + 0.25).unwrap();
            assert!(m_here < 22.0);
            assert!(
                m_above >= 22.0,
                "a higher set-point should have been infeasible"
            );
        }
    }

    #[test]
    fn cold_start_default() {
        let (mut ctrl, _) = controller();
        let sp = ctrl.decide(&Trace::with_sensors(2, 35));
        assert_eq!(sp, 23.0);
    }

    #[test]
    fn smin_backup_when_everything_infeasible() {
        let (mut ctrl, trace) = controller();
        // Force infeasibility by dropping the limit absurdly low.
        ctrl.config.d_allowed = Celsius::new(-100.0);
        let sp = ctrl.decide(&trace);
        assert_eq!(sp, 20.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let dcfg = DatasetConfig {
            days: 0.3,
            seed: 2,
            ..DatasetConfig::default()
        };
        let trace = generate_sweep_trace(&dcfg).unwrap();
        let cfg = LazicConfig {
            bounds: (35.0, 20.0),
            ..LazicConfig::default()
        };
        assert!(LazicController::new(&trace, cfg).is_err());
        let cfg = LazicConfig {
            grid_step: 0.0,
            ..LazicConfig::default()
        };
        assert!(LazicController::new(&trace, cfg).is_err());
    }
}
