//! Property-based tests for the Bayesian optimizer.

use proptest::prelude::*;
use tesla_bo::{BayesianOptimizer, BoConfig, PredictionErrorMonitor};

fn optimizer() -> BayesianOptimizer {
    BayesianOptimizer::new(BoConfig {
        bounds: (20.0, 35.0),
        n_init: 5,
        n_iter: 2,
        n_mc: 24,
        n_grid: 16,
        ..BoConfig::default()
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the objective/constraint surfaces, the decision stays in
    /// bounds and the outcome is internally consistent.
    #[test]
    fn decision_always_in_bounds(
        peak in 18.0f64..38.0,
        limit in 18.0f64..40.0,
        noise_o in 1e-6f64..4.0,
        noise_c in 1e-6f64..4.0,
        seed in 0u64..200,
    ) {
        let opt = optimizer();
        let out = opt
            .optimize(
                |s| (-(s - peak) * (s - peak), s - limit),
                (noise_o, noise_c),
                seed,
            )
            .unwrap();
        prop_assert!((20.0..=35.0).contains(&out.setpoint));
        prop_assert!(!out.evaluated.is_empty());
        prop_assert_eq!(out.grid.len(), out.objective_mean.len());
        prop_assert_eq!(out.grid.len(), out.constraint_mean.len());
        if out.fallback {
            prop_assert_eq!(out.setpoint, 20.0);
        }
    }

    /// Warm-start hints are honoured: every finite in-bounds hint appears
    /// among the evaluated points.
    #[test]
    fn hints_are_evaluated(
        h1 in 21.0f64..34.0,
        h2 in 21.0f64..34.0,
        seed in 0u64..100,
    ) {
        let opt = optimizer();
        let out = opt
            .optimize_with_hints(
                |s| (-s, s - 30.0),
                (0.01, 0.01),
                seed,
                &[h1, h2, f64::NAN],
            )
            .unwrap();
        for h in [h1, h2] {
            let seen = out.evaluated.iter().any(|(s, _, _)| (s - h).abs() < 1e-6);
            prop_assert!(seen, "hint {h} was not evaluated");
        }
    }

    /// A uniformly infeasible constraint always produces the S_min
    /// fallback, regardless of noise or seed.
    #[test]
    fn infeasible_always_falls_back(
        margin in 0.5f64..20.0,
        noise in 1e-6f64..0.5,
        seed in 0u64..100,
    ) {
        let opt = optimizer();
        let out = opt.optimize(|_| (0.0, margin), (noise, noise), seed).unwrap();
        prop_assert!(out.fallback);
        prop_assert_eq!(out.setpoint, 20.0);
    }

    /// Bootstrap variances scale with the error magnitude.
    #[test]
    fn monitor_variance_scales(scale in 0.1f64..10.0) {
        let mut small = PredictionErrorMonitor::new(500, (1.0, 1.0));
        let mut big = PredictionErrorMonitor::new(500, (1.0, 1.0));
        for i in 0..200 {
            let e = ((i as f64) * 0.7).sin();
            small.record(e, e);
            big.record(e * scale, e * scale);
        }
        let (vs, _) = small.bootstrap_variances(800, 3);
        let (vb, _) = big.bootstrap_variances(800, 3);
        let ratio = vb / vs;
        prop_assert!(
            (ratio / (scale * scale) - 1.0).abs() < 0.6,
            "variance ratio {ratio} vs scale^2 {}",
            scale * scale
        );
    }
}
