#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Modeling-error-aware constrained Bayesian optimization (§3.3, Fig. 7).
//!
//! At every control step TESLA must pick the set-point that maximizes a
//! predicted objective (negative cooling energy minus the cooling-
//! interruption penalty) subject to a predicted thermal constraint — but
//! both functions come from the DC time-series model and carry modeling
//! error. The paper's answer:
//!
//! * an online [`monitor::PredictionErrorMonitor`] keeps the last day of
//!   prediction errors and estimates their variance by bootstrapping
//!   (`N_b = 500` resamples, Table 2);
//! * *separate fixed-noise GPs* fit the observed (set-point → objective)
//!   and (set-point → constraint) pairs with that variance as the
//!   per-point noise;
//! * the acquisition function is [`acquisition::constrained_nei`] —
//!   constrained Noisy Expected Improvement \[21\] integrated with
//!   quasi-Monte Carlo;
//! * if no candidate satisfies the constraint, the optimizer falls back
//!   to `S_min` "and it will re-calibrate itself later".
//!
//! [`optimizer::BayesianOptimizer`] wires these together.
//!
//! # Example: bootstrap variance from logged prediction errors
//!
//! ```
//! use tesla_bo::PredictionErrorMonitor;
//!
//! let mut monitor = PredictionErrorMonitor::new(100, (0.05, 0.05));
//! for i in 0..32 {
//!     let swing = if i % 2 == 0 { 0.2 } else { -0.2 };
//!     monitor.record(swing, swing * 0.5); // (energy kWh, constraint °C)
//! }
//! let (var_obj, var_con) = monitor.bootstrap_variances(200, 7);
//! assert!(var_obj > 0.0 && var_con > 0.0);
//! ```

pub mod acquisition;
pub mod monitor;
pub mod optimizer;

pub use monitor::PredictionErrorMonitor;
pub use optimizer::{parallel_eval, BayesianOptimizer, BoConfig, BoOutcome};

/// Errors from the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum BoError {
    /// Invalid configuration.
    BadConfig(String),
    /// Underlying GP failure.
    Gp(String),
}

impl std::fmt::Display for BoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoError::BadConfig(m) => write!(f, "bad BO config: {m}"),
            BoError::Gp(m) => write!(f, "GP failure: {m}"),
        }
    }
}

impl std::error::Error for BoError {}

impl From<tesla_gp::GpError> for BoError {
    fn from(e: tesla_gp::GpError) -> Self {
        BoError::Gp(e.to_string())
    }
}
