//! Constrained Noisy Expected Improvement (NEI) with quasi-Monte-Carlo
//! integration — the acquisition function of Letham et al. \[21\] that the
//! paper adopts (§3.3): it "assumes the observed objective and constraint
//! values are not perfect and can process hard constraints".
//!
//! NEI handles noisy observations by integrating classic constrained EI
//! over the *joint posterior at the observed points*: each QMC sample
//! realizes a plausible noiseless objective/constraint at every observed
//! point, determines the feasible incumbent under that realization, and
//! scores the candidate's improvement; the NEI value is the QMC average.

// analysis:allow-file(panic-free-control-path): MC scoring indexes
// draws shaped (n_mc, len(points)) by construction.
// analysis:allow-file(no-alloc-in-decide-steady-state): QMC normal
// blocks and posterior draws are per-scoring-call buffers bounded by
// n_mc * points; reuse across iterations is ROADMAP work.
use crate::BoError;
use tesla_gp::{qmc_normal_hybrid, FixedNoiseGp, Matern52};

/// Computes constrained-NEI scores for each candidate.
///
/// * `gp_obj` / `gp_con` — fixed-noise GPs over (set-point → objective,
///   maximized) and (set-point → constraint, feasible iff ≤ 0).
/// * `observed` — set-points already evaluated this decision.
/// * `candidates` — set-points to score.
/// * `n_mc` — QMC sample count.
pub fn constrained_nei(
    gp_obj: &FixedNoiseGp<Matern52>,
    gp_con: &FixedNoiseGp<Matern52>,
    observed: &[f64],
    candidates: &[f64],
    n_mc: usize,
    seed: u64,
) -> Result<Vec<f64>, BoError> {
    let points: Vec<Vec<f64>> = candidates
        .iter()
        .chain(observed.iter())
        .map(|&s| vec![s])
        .collect();
    constrained_nei_prelifted(gp_obj, gp_con, &points, candidates.len(), n_mc, seed)
}

/// [`constrained_nei`] over pre-lifted points: `points[..n_candidates]`
/// are the candidates to score and `points[n_candidates..]` the observed
/// set-points. Candidates-first ordering lets the optimizer keep ONE
/// `Vec<Vec<f64>>` buffer for the whole decision — the grid occupies the
/// fixed prefix and each new observation is appended at the end, so the
/// per-iteration point-lifting allocation disappears.
pub fn constrained_nei_prelifted(
    gp_obj: &FixedNoiseGp<Matern52>,
    gp_con: &FixedNoiseGp<Matern52>,
    points: &[Vec<f64>],
    n_candidates: usize,
    n_mc: usize,
    seed: u64,
) -> Result<Vec<f64>, BoError> {
    if n_candidates == 0 {
        return Ok(Vec::new());
    }
    if n_candidates > points.len() {
        return Err(BoError::BadConfig(format!(
            "{n_candidates} candidates but only {} points",
            points.len()
        )));
    }
    let m = points.len();

    let normals_obj = qmc_normal_hybrid(n_mc.max(8), m, seed);
    let normals_con = qmc_normal_hybrid(n_mc.max(8), m, seed ^ 0xDEADBEEF);
    let draws_obj = gp_obj.sample_posterior(points, &normals_obj)?;
    let draws_con = gp_con.sample_posterior(points, &normals_con)?;

    let mut scores = vec![0.0; n_candidates];
    for (sample_o, sample_c) in draws_obj.iter().zip(&draws_con) {
        // Feasible incumbent under this realization.
        let mut incumbent = f64::NEG_INFINITY;
        let mut any_feasible = false;
        let mut worst = f64::INFINITY;
        for i in n_candidates..m {
            worst = worst.min(sample_o[i]);
            if sample_c[i] <= 0.0 {
                any_feasible = true;
                incumbent = incumbent.max(sample_o[i]);
            }
        }
        // With no feasible incumbent, improvement is measured against the
        // worst observed value so feasibility itself is rewarded.
        let reference = if any_feasible {
            incumbent
        } else if worst.is_finite() {
            worst
        } else {
            0.0
        };
        for (score, (&o, &c)) in scores.iter_mut().zip(sample_o.iter().zip(sample_c)) {
            if c <= 0.0 {
                *score += (o - reference).max(0.0);
            }
        }
    }
    let n = draws_obj.len() as f64;
    for s in &mut scores {
        *s /= n;
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_gp::Matern52;

    /// GP pair for a simple 1-D problem on \[0, 10\]:
    /// objective f(s) = −(s − 7)², constraint c(s) = s − 8 (feasible s ≤ 8).
    fn fixture() -> (FixedNoiseGp<Matern52>, FixedNoiseGp<Matern52>, Vec<f64>) {
        let xs: Vec<f64> = vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
        let pts: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let obj: Vec<f64> = xs.iter().map(|&s| -(s - 7.0) * (s - 7.0)).collect();
        let con: Vec<f64> = xs.iter().map(|&s| s - 8.0).collect();
        let noise = vec![1e-4; xs.len()];
        let gp_o = FixedNoiseGp::fit(Matern52::new(2.0, 25.0), pts.clone(), &obj, &noise).unwrap();
        let gp_c = FixedNoiseGp::fit(Matern52::new(2.0, 25.0), pts, &con, &noise).unwrap();
        (gp_o, gp_c, xs)
    }

    #[test]
    fn prefers_the_feasible_optimum_region() {
        let (gp_o, gp_c, xs) = fixture();
        let candidates = vec![1.0, 3.0, 5.0, 7.0, 9.0];
        let scores = constrained_nei(&gp_o, &gp_c, &xs, &candidates, 128, 1).unwrap();
        // s = 7 is the feasible optimum; it must out-score the far-left
        // candidates and the infeasible s = 9.
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(candidates[best], 7.0, "scores {scores:?}");
    }

    #[test]
    fn infeasible_candidates_score_near_zero() {
        let (gp_o, gp_c, xs) = fixture();
        let scores = constrained_nei(&gp_o, &gp_c, &xs, &[9.5], 128, 2).unwrap();
        assert!(scores[0] < 0.5, "infeasible candidate scored {}", scores[0]);
    }

    #[test]
    fn empty_candidates_ok() {
        let (gp_o, gp_c, xs) = fixture();
        assert!(constrained_nei(&gp_o, &gp_c, &xs, &[], 64, 3)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (gp_o, gp_c, xs) = fixture();
        let a = constrained_nei(&gp_o, &gp_c, &xs, &[5.0, 7.0], 64, 9).unwrap();
        let b = constrained_nei(&gp_o, &gp_c, &xs, &[5.0, 7.0], 64, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_observed_infeasible_still_rewards_feasible_candidates() {
        // Observations only in the infeasible region; a feasible candidate
        // should still get a positive score.
        let xs = vec![8.5, 9.0, 9.5];
        let pts: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let obj: Vec<f64> = xs.iter().map(|&s| -(s - 7.0) * (s - 7.0)).collect();
        let con: Vec<f64> = xs.iter().map(|&s| s - 8.0).collect();
        let noise = vec![1e-4; 3];
        let gp_o = FixedNoiseGp::fit(Matern52::new(2.0, 25.0), pts.clone(), &obj, &noise).unwrap();
        let gp_c = FixedNoiseGp::fit(Matern52::new(2.0, 25.0), pts, &con, &noise).unwrap();
        let scores = constrained_nei(&gp_o, &gp_c, &xs, &[7.0], 128, 4).unwrap();
        assert!(scores[0] > 0.0);
    }
}
