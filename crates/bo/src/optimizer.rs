//! The modeling-error-aware Bayesian optimizer (Fig. 7's center box).

use crate::acquisition::constrained_nei;
use crate::BoError;
use tesla_gp::{fit_matern_hypers, normal_cdf, FixedNoiseGp, Matern52, SobolSequence};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Search bounds `[S_min, S_max]` (the ACU specification range).
    pub bounds: (f64, f64),
    /// Initial Sobol design size.
    pub n_init: usize,
    /// BO iterations after the initial design.
    pub n_iter: usize,
    /// QMC samples for the NEI integral.
    pub n_mc: usize,
    /// Grid resolution for candidate scoring and final selection.
    pub n_grid: usize,
    /// Required posterior probability that the constraint holds.
    pub feasibility_threshold: f64,
    /// Lengthscale grid for the GP hyper-fit (°C units of set-point).
    pub lengthscales: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            bounds: (20.0, 35.0),
            n_init: 8,
            n_iter: 5,
            n_mc: 64,
            n_grid: 61,
            feasibility_threshold: 0.85,
            lengthscales: vec![0.3, 1.0, 3.0, 8.0],
            seed: 0,
        }
    }
}

/// Result of one optimizer decision.
#[derive(Debug, Clone)]
pub struct BoOutcome {
    /// Chosen set-point, °C.
    pub setpoint: f64,
    /// True when no candidate met the feasibility threshold and the
    /// optimizer fell back to `S_min` (§3.3's backup strategy).
    pub fallback: bool,
    /// Every evaluated `(setpoint, objective, constraint)` triple.
    pub evaluated: Vec<(f64, f64, f64)>,
    /// Posterior-mean objective over the final grid (for Fig. 8b).
    pub grid: Vec<f64>,
    /// Posterior mean of the objective at each grid point.
    pub objective_mean: Vec<f64>,
    /// Posterior mean of the constraint at each grid point.
    pub constraint_mean: Vec<f64>,
}

/// The modeling-error-aware constrained Bayesian optimizer.
#[derive(Debug, Clone)]
pub struct BayesianOptimizer {
    config: BoConfig,
}

impl BayesianOptimizer {
    /// Creates an optimizer after validating the configuration.
    pub fn new(config: BoConfig) -> Result<Self, BoError> {
        if config.bounds.0 >= config.bounds.1 {
            return Err(BoError::BadConfig("bounds must satisfy min < max".into()));
        }
        if config.n_init < 2 || config.n_grid < 4 {
            return Err(BoError::BadConfig(
                "need n_init >= 2 and n_grid >= 4".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.feasibility_threshold) {
            return Err(BoError::BadConfig(
                "feasibility_threshold must be in [0,1]".into(),
            ));
        }
        if config.lengthscales.is_empty() {
            return Err(BoError::BadConfig(
                "lengthscale grid must be non-empty".into(),
            ));
        }
        Ok(BayesianOptimizer { config })
    }

    /// The configuration.
    pub fn config(&self) -> &BoConfig {
        &self.config
    }

    /// Runs one decision. `eval(s)` returns the *predicted* `(objective,
    /// constraint)` at set-point `s` — objective maximized, constraint
    /// feasible iff ≤ 0 (Eq. 5). `noise_var` is the bootstrap variance
    /// pair from the prediction-error monitor.
    pub fn optimize(
        &self,
        eval: impl FnMut(f64) -> (f64, f64),
        noise_var: (f64, f64),
        seed: u64,
    ) -> Result<BoOutcome, BoError> {
        self.optimize_with_hints(eval, noise_var, seed, &[])
    }

    /// Like [`Self::optimize`], with extra warm-start candidates included
    /// in the initial design. TESLA seeds these with points around the
    /// current inlet temperature: the energy-optimal set-point always sits
    /// near the interruption kink at `inlet + κ`, and evaluating there
    /// directly saves acquisition rounds.
    pub fn optimize_with_hints(
        &self,
        mut eval: impl FnMut(f64) -> (f64, f64),
        noise_var: (f64, f64),
        seed: u64,
        hints: &[f64],
    ) -> Result<BoOutcome, BoError> {
        let _decision_timer = tesla_obs::Timer::start(tesla_obs::histogram!("bo_decision_seconds"));
        let acq_evals = tesla_obs::counter!("bo_acquisition_evaluations_total");
        let (lo, hi) = self.config.bounds;
        let span = hi - lo;

        // Initial design: bounds + warm-start hints + Sobol interior.
        let mut seq = SobolSequence::new(1);
        let mut xs: Vec<f64> = Vec::with_capacity(self.config.n_init + hints.len());
        let push_unique = |xs: &mut Vec<f64>, s: f64| {
            let s = s.clamp(lo, hi);
            if xs.iter().all(|&e| (e - s).abs() > span * 1e-6) {
                xs.push(s);
            }
        };
        push_unique(&mut xs, lo);
        push_unique(&mut xs, hi);
        for &h in hints {
            if h.is_finite() {
                push_unique(&mut xs, h);
            }
        }
        while xs.len() < self.config.n_init + hints.len() {
            let p = seq.next_point()[0];
            push_unique(&mut xs, lo + p * span);
            if seq.dims() == 1 && xs.len() >= 64 {
                break; // safety against duplicate-saturated ranges
            }
        }
        let mut ys_obj = Vec::with_capacity(xs.len());
        let mut ys_con = Vec::with_capacity(xs.len());
        for &s in &xs {
            let (o, c) = eval(s);
            acq_evals.inc();
            ys_obj.push(o);
            ys_con.push(c);
        }

        let grid: Vec<f64> = (0..self.config.n_grid)
            .map(|i| lo + span * i as f64 / (self.config.n_grid - 1) as f64)
            .collect();

        // BO loop: fit both GPs, score NEI on the grid, evaluate argmax.
        let mut gp_pair = self.fit_gps(&xs, &ys_obj, &ys_con, noise_var)?;
        let mut iterations_run = 0u64;
        for it in 0..self.config.n_iter {
            iterations_run = it as u64 + 1;
            let scores = constrained_nei(
                &gp_pair.0,
                &gp_pair.1,
                &xs,
                &grid,
                self.config.n_mc,
                seed ^ (it as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )?;
            // Argmax not yet evaluated.
            let mut best: Option<(usize, f64)> = None;
            for (i, &sc) in scores.iter().enumerate() {
                if xs.iter().any(|&e| (e - grid[i]).abs() < span * 1e-6) {
                    continue;
                }
                if best.is_none_or(|(_, b)| sc > b) {
                    best = Some((i, sc));
                }
            }
            let Some((idx, score)) = best else { break };
            if score <= 0.0 {
                break; // no expected improvement anywhere
            }
            let s = grid[idx];
            let (o, c) = eval(s);
            acq_evals.inc();
            xs.push(s);
            ys_obj.push(o);
            ys_con.push(c);
            gp_pair = self.fit_gps(&xs, &ys_obj, &ys_con, noise_var)?;
        }

        // Final selection: the best *evaluated* objective among points
        // whose GP probability of feasibility clears the threshold (the
        // incumbent-recommendation rule of noisy BO). Judging feasibility
        // through the constraint GP — whose noise is the bootstrap
        // modeling-error variance — is what makes the decision
        // error-aware; judging the objective at evaluated points avoids
        // the posterior-mean smoothing washing out the sharp interruption
        // kink at `inlet + κ`.
        let pts: Vec<Vec<f64>> = grid.iter().map(|&s| vec![s]).collect();
        let post_o = gp_pair.0.posterior(&pts);
        let post_c = gp_pair.1.posterior(&pts);
        let eval_pts: Vec<Vec<f64>> = xs.iter().map(|&s| vec![s]).collect();
        let post_c_eval = gp_pair.1.posterior(&eval_pts);
        let mut best: Option<(f64, f64)> = None; // (setpoint, observed objective)
        for i in 0..xs.len() {
            let sigma = post_c_eval.var[i].sqrt().max(1e-9);
            let p_feasible = normal_cdf(-post_c_eval.mean[i] / sigma);
            if p_feasible >= self.config.feasibility_threshold
                && best.is_none_or(|(_, b)| ys_obj[i] > b)
            {
                best = Some((xs[i], ys_obj[i]));
            }
        }

        let evaluated: Vec<(f64, f64, f64)> = xs
            .iter()
            .zip(ys_obj.iter().zip(&ys_con))
            .map(|(&s, (&o, &c))| (s, o, c))
            .collect();
        let (setpoint, fallback) = match best {
            Some((s, _)) => (s, false),
            // §3.3: "TESLA selects S_min and it will re-calibrate itself
            // later."
            None => (lo, true),
        };
        tesla_obs::histogram!("bo_iterations_to_converge_iterations")
            .observe(iterations_run as f64);
        if fallback {
            tesla_obs::counter!("bo_fallback_decisions_total").inc();
        }
        Ok(BoOutcome {
            setpoint,
            fallback,
            evaluated,
            grid,
            objective_mean: post_o.mean,
            constraint_mean: post_c.mean,
        })
    }

    fn fit_gps(
        &self,
        xs: &[f64],
        ys_obj: &[f64],
        ys_con: &[f64],
        noise_var: (f64, f64),
    ) -> Result<(FixedNoiseGp<Matern52>, FixedNoiseGp<Matern52>), BoError> {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&s| vec![s]).collect();
        let scale = |ys: &[f64]| -> Vec<f64> {
            // Output-scale grid tied to the data spread.
            let var = tesla_linalg::stats::variance(ys).max(1e-6);
            vec![var * 0.3, var, var * 3.0]
        };
        let gp_o = fit_matern_hypers(
            &pts,
            ys_obj,
            &vec![noise_var.0.max(1e-9); xs.len()],
            &self.config.lengthscales,
            &scale(ys_obj),
        )?;
        let gp_c = fit_matern_hypers(
            &pts,
            ys_con,
            &vec![noise_var.1.max(1e-9); xs.len()],
            &self.config.lengthscales,
            &scale(ys_con),
        )?;
        Ok((gp_o, gp_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimizer() -> BayesianOptimizer {
        BayesianOptimizer::new(BoConfig {
            bounds: (20.0, 35.0),
            n_init: 6,
            n_iter: 4,
            n_mc: 48,
            n_grid: 31,
            ..BoConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn finds_the_constrained_optimum() {
        // Objective peaks at 30, constraint allows only s ≤ 27:
        // the answer must sit near 27.
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 30.0) * (s - 30.0), s - 27.0), (1e-6, 1e-6), 1)
            .unwrap();
        assert!(!out.fallback);
        assert!(
            (out.setpoint - 27.0).abs() <= 1.0,
            "chose {} (expected ≈ 27)",
            out.setpoint
        );
    }

    #[test]
    fn unconstrained_peak_found_when_feasible() {
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 26.0) * (s - 26.0), -1.0), (1e-6, 1e-6), 2)
            .unwrap();
        assert!(!out.fallback);
        assert!((out.setpoint - 26.0).abs() <= 1.0, "chose {}", out.setpoint);
    }

    #[test]
    fn falls_back_to_smin_when_everything_infeasible() {
        let opt = optimizer();
        let out = opt.optimize(|_| (0.0, 5.0), (1e-6, 1e-6), 3).unwrap();
        assert!(out.fallback);
        assert_eq!(out.setpoint, 20.0);
    }

    #[test]
    fn noise_awareness_high_noise_keeps_exploring() {
        // With huge observation noise, the optimizer must still return a
        // bounded, in-range answer (and not crash).
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 25.0) * (s - 25.0), s - 30.0), (25.0, 4.0), 4)
            .unwrap();
        assert!((20.0..=35.0).contains(&out.setpoint));
    }

    #[test]
    fn outcome_carries_posterior_curves_for_fig8() {
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 26.0) * (s - 26.0), s - 28.0), (1e-4, 1e-4), 5)
            .unwrap();
        assert_eq!(out.grid.len(), 31);
        assert_eq!(out.objective_mean.len(), 31);
        assert_eq!(out.constraint_mean.len(), 31);
        // Constraint mean should be increasing in s (it is s − 28).
        assert!(out.constraint_mean[30] > out.constraint_mean[0]);
        assert!(out.evaluated.len() >= 6);
    }

    #[test]
    fn config_validation() {
        assert!(BayesianOptimizer::new(BoConfig {
            bounds: (30.0, 20.0),
            ..BoConfig::default()
        })
        .is_err());
        assert!(BayesianOptimizer::new(BoConfig {
            n_init: 1,
            ..BoConfig::default()
        })
        .is_err());
        assert!(BayesianOptimizer::new(BoConfig {
            feasibility_threshold: 1.5,
            ..BoConfig::default()
        })
        .is_err());
        assert!(BayesianOptimizer::new(BoConfig {
            lengthscales: vec![],
            ..BoConfig::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let opt = optimizer();
        let run = |seed| {
            opt.optimize(|s| (-(s - 24.0) * (s - 24.0), s - 29.0), (0.01, 0.01), seed)
                .unwrap()
                .setpoint
        };
        assert_eq!(run(7), run(7));
    }
}
