//! The modeling-error-aware Bayesian optimizer (Fig. 7's center box).
//!
//! # Hot-path structure (see `docs/PERFORMANCE.md`)
//!
//! [`BayesianOptimizer::optimize_batched`] is the single implementation;
//! the serial [`BayesianOptimizer::optimize`] /
//! [`BayesianOptimizer::optimize_with_hints`] entry points are thin
//! wrappers that evaluate the batch one point at a time in order, so both
//! paths run literally the same arithmetic and pick bit-identical
//! set-points for the same seed. Per decision the optimizer:
//!
//! * evaluates the whole initial design through **one** `eval_batch`
//!   call (callers may fan the batch out across threads — see
//!   [`parallel_eval`]);
//! * freezes the per-point noise vectors and the output-scale grid once
//!   (computed from the initial design) instead of reallocating them on
//!   every refit;
//! * tracks both GP hyper grids incrementally with
//!   [`tesla_gp::MaternHyperSearch`] — each new observation is a rank-1
//!   Cholesky row append per grid candidate, not a refactorization;
//! * keeps one candidates-first point buffer for the whole decision
//!   (grid prefix + appended observations) shared by the NEI scorer and
//!   the final selection, which itself runs as a single batched
//!   posterior solve over grid and evaluated points together.

// analysis:allow-file(panic-free-control-path): BO loop indices are
// bounded by the grid/design sizes it just built; eval results are
// length-checked before use.
// analysis:allow-file(no-alloc-in-decide-steady-state): one BO run
// per decision builds its design, grid, and observation vectors
// fresh — bounded by n_init/n_grid/n_iter config; per-decision
// allocation is the paper's design.
use crate::acquisition::constrained_nei_prelifted;
use crate::BoError;
use tesla_gp::{normal_cdf, MaternHyperSearch, SobolSequence};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Search bounds `[S_min, S_max]` (the ACU specification range).
    pub bounds: (f64, f64),
    /// Initial Sobol design size.
    pub n_init: usize,
    /// BO iterations after the initial design.
    pub n_iter: usize,
    /// QMC samples for the NEI integral.
    pub n_mc: usize,
    /// Grid resolution for candidate scoring and final selection.
    pub n_grid: usize,
    /// Required posterior probability that the constraint holds.
    pub feasibility_threshold: f64,
    /// Lengthscale grid for the GP hyper-fit (°C units of set-point).
    pub lengthscales: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            bounds: (20.0, 35.0),
            n_init: 8,
            n_iter: 5,
            n_mc: 64,
            n_grid: 61,
            feasibility_threshold: 0.85,
            lengthscales: vec![0.3, 1.0, 3.0, 8.0],
            seed: 0,
        }
    }
}

/// Result of one optimizer decision.
#[derive(Debug, Clone)]
pub struct BoOutcome {
    /// Chosen set-point, °C.
    pub setpoint: f64,
    /// True when no candidate met the feasibility threshold and the
    /// optimizer fell back to `S_min` (§3.3's backup strategy).
    pub fallback: bool,
    /// Every evaluated `(setpoint, objective, constraint)` triple.
    pub evaluated: Vec<(f64, f64, f64)>,
    /// Posterior-mean objective over the final grid (for Fig. 8b).
    pub grid: Vec<f64>,
    /// Posterior mean of the objective at each grid point.
    pub objective_mean: Vec<f64>,
    /// Posterior mean of the constraint at each grid point.
    pub constraint_mean: Vec<f64>,
}

/// The modeling-error-aware constrained Bayesian optimizer.
#[derive(Debug, Clone)]
pub struct BayesianOptimizer {
    config: BoConfig,
}

impl BayesianOptimizer {
    /// Creates an optimizer after validating the configuration.
    pub fn new(config: BoConfig) -> Result<Self, BoError> {
        if config.bounds.0 >= config.bounds.1 {
            return Err(BoError::BadConfig("bounds must satisfy min < max".into()));
        }
        if config.n_init < 2 || config.n_grid < 4 {
            return Err(BoError::BadConfig(
                "need n_init >= 2 and n_grid >= 4".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.feasibility_threshold) {
            return Err(BoError::BadConfig(
                "feasibility_threshold must be in [0,1]".into(),
            ));
        }
        if config.lengthscales.is_empty() {
            return Err(BoError::BadConfig(
                "lengthscale grid must be non-empty".into(),
            ));
        }
        Ok(BayesianOptimizer { config })
    }

    /// The configuration.
    pub fn config(&self) -> &BoConfig {
        &self.config
    }

    /// Runs one decision. `eval(s)` returns the *predicted* `(objective,
    /// constraint)` at set-point `s` — objective maximized, constraint
    /// feasible iff ≤ 0 (Eq. 5). `noise_var` is the bootstrap variance
    /// pair from the prediction-error monitor.
    pub fn optimize(
        &self,
        eval: impl FnMut(f64) -> (f64, f64),
        noise_var: (f64, f64),
        seed: u64,
    ) -> Result<BoOutcome, BoError> {
        self.optimize_with_hints(eval, noise_var, seed, &[])
    }

    /// Like [`Self::optimize`], with extra warm-start candidates included
    /// in the initial design. TESLA seeds these with points around the
    /// current inlet temperature: the energy-optimal set-point always sits
    /// near the interruption kink at `inlet + κ`, and evaluating there
    /// directly saves acquisition rounds.
    pub fn optimize_with_hints(
        &self,
        mut eval: impl FnMut(f64) -> (f64, f64),
        noise_var: (f64, f64),
        seed: u64,
        hints: &[f64],
    ) -> Result<BoOutcome, BoError> {
        // In-order serial evaluation: same arithmetic, same decisions as
        // any batched/parallel caller.
        self.optimize_batched(
            |batch: &[f64]| batch.iter().map(|&s| eval(s)).collect(),
            noise_var,
            seed,
            hints,
        )
    }

    /// Batch-evaluation entry point: `eval_batch` receives every set-point
    /// the optimizer wants evaluated in one call (the whole initial design
    /// up front, then one point per BO iteration) and returns the
    /// `(objective, constraint)` pairs **in the same order**. Callers may
    /// evaluate batch elements concurrently (e.g. via [`parallel_eval`]);
    /// because the optimizer consumes results by position, any
    /// order-preserving execution yields bit-identical decisions to the
    /// serial path.
    pub fn optimize_batched(
        &self,
        mut eval_batch: impl FnMut(&[f64]) -> Vec<(f64, f64)>,
        noise_var: (f64, f64),
        seed: u64,
        hints: &[f64],
    ) -> Result<BoOutcome, BoError> {
        let _decision_timer = tesla_obs::Timer::start(tesla_obs::histogram!("bo_decision_seconds"));
        let acq_evals = tesla_obs::counter!("bo_acquisition_evaluations_total");
        let (lo, hi) = self.config.bounds;
        let span = hi - lo;

        // Initial design: bounds + warm-start hints + Sobol interior.
        let mut seq = SobolSequence::new(1);
        let mut xs: Vec<f64> = Vec::with_capacity(self.config.n_init + hints.len());
        let push_unique = |xs: &mut Vec<f64>, s: f64| {
            let s = s.clamp(lo, hi);
            if xs.iter().all(|&e| (e - s).abs() > span * 1e-6) {
                xs.push(s);
            }
        };
        push_unique(&mut xs, lo);
        push_unique(&mut xs, hi);
        for &h in hints {
            if h.is_finite() {
                push_unique(&mut xs, h);
            }
        }
        while xs.len() < self.config.n_init + hints.len() {
            let p = seq.next_point()[0];
            push_unique(&mut xs, lo + p * span);
            if seq.dims() == 1 && xs.len() >= 64 {
                break; // safety against duplicate-saturated ranges
            }
        }
        // One batched evaluation for the entire initial design.
        let init = eval_batch(&xs);
        if init.len() != xs.len() {
            return Err(BoError::BadConfig(format!(
                "eval_batch returned {} results for {} points",
                init.len(),
                xs.len()
            )));
        }
        acq_evals.add(xs.len() as u64);
        let mut ys_obj: Vec<f64> = init.iter().map(|&(o, _)| o).collect();
        let mut ys_con: Vec<f64> = init.iter().map(|&(_, c)| c).collect();

        let grid: Vec<f64> = (0..self.config.n_grid)
            .map(|i| lo + span * i as f64 / (self.config.n_grid - 1) as f64)
            .collect();

        // The decision's single point buffer: grid candidates first, every
        // evaluated set-point appended after. The NEI scorer and the final
        // batched posterior both read from it; nothing is re-lifted.
        let mut pts: Vec<Vec<f64>> = Vec::with_capacity(grid.len() + xs.len() + self.config.n_iter);
        pts.extend(grid.iter().map(|&s| vec![s]));
        pts.extend(xs.iter().map(|&s| vec![s]));

        // Per-point noise and the output-scale grids are frozen once per
        // decision (from the initial design); the incremental hyper
        // searches then extend their cached Cholesky factors by one rank-1
        // row per observation instead of refactorizing the whole grid.
        let (nv_o, nv_c) = (noise_var.0.max(1e-9), noise_var.1.max(1e-9));
        let os_grid = |ys: &[f64]| -> Vec<f64> {
            let var = tesla_linalg::stats::variance(ys).max(1e-6);
            vec![var * 0.3, var, var * 3.0]
        };
        let mut search_o = MaternHyperSearch::new(
            pts[grid.len()..].to_vec(),
            ys_obj.clone(),
            vec![nv_o; xs.len()],
            &self.config.lengthscales,
            &os_grid(&ys_obj),
        )?;
        let mut search_c = MaternHyperSearch::new(
            pts[grid.len()..].to_vec(),
            ys_con.clone(),
            vec![nv_c; xs.len()],
            &self.config.lengthscales,
            &os_grid(&ys_con),
        )?;

        // BO loop: fit both GPs, score NEI on the grid, evaluate argmax.
        let mut gp_pair = (search_o.select()?, search_c.select()?);
        let mut iterations_run = 0u64;
        for it in 0..self.config.n_iter {
            iterations_run = it as u64 + 1;
            let scores = constrained_nei_prelifted(
                &gp_pair.0,
                &gp_pair.1,
                &pts,
                grid.len(),
                self.config.n_mc,
                seed ^ (it as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )?;
            // Argmax not yet evaluated.
            let mut best: Option<(usize, f64)> = None;
            for (i, &sc) in scores.iter().enumerate() {
                if xs.iter().any(|&e| (e - grid[i]).abs() < span * 1e-6) {
                    continue;
                }
                if best.is_none_or(|(_, b)| sc > b) {
                    best = Some((i, sc));
                }
            }
            let Some((idx, score)) = best else { break };
            if score <= 0.0 {
                break; // no expected improvement anywhere
            }
            let s = grid[idx];
            let result = eval_batch(std::slice::from_ref(&s));
            let Some(&(o, c)) = result.first() else {
                return Err(BoError::BadConfig(
                    "eval_batch returned no result for 1 point".into(),
                ));
            };
            acq_evals.inc();
            xs.push(s);
            ys_obj.push(o);
            ys_con.push(c);
            pts.push(vec![s]);
            // analysis:resolve(MaternHyperSearch::append)
            search_o.append(vec![s], o, nv_o)?;
            // analysis:resolve(MaternHyperSearch::append)
            search_c.append(vec![s], c, nv_c)?;
            gp_pair = (search_o.select()?, search_c.select()?);
        }

        // Final selection: the best *evaluated* objective among points
        // whose GP probability of feasibility clears the threshold (the
        // incumbent-recommendation rule of noisy BO). Judging feasibility
        // through the constraint GP — whose noise is the bootstrap
        // modeling-error variance — is what makes the decision
        // error-aware; judging the objective at evaluated points avoids
        // the posterior-mean smoothing washing out the sharp interruption
        // kink at `inlet + κ`. The GPs come straight from the loop's last
        // refit, and the constraint posterior over grid + evaluated points
        // is ONE batched whitened solve on the shared buffer.
        let post_o = gp_pair.0.posterior(&pts[..grid.len()]);
        let post_c = gp_pair.1.posterior(&pts);
        let (c_grid_mean, c_eval_mean) = post_c.mean.split_at(grid.len());
        let c_eval_var = &post_c.var[grid.len()..];
        let mut best: Option<(f64, f64)> = None; // (setpoint, observed objective)
        for i in 0..xs.len() {
            let sigma = c_eval_var[i].sqrt().max(1e-9);
            let p_feasible = normal_cdf(-c_eval_mean[i] / sigma);
            if p_feasible >= self.config.feasibility_threshold
                && best.is_none_or(|(_, b)| ys_obj[i] > b)
            {
                best = Some((xs[i], ys_obj[i]));
            }
        }

        let evaluated: Vec<(f64, f64, f64)> = xs
            .iter()
            .zip(ys_obj.iter().zip(&ys_con))
            .map(|(&s, (&o, &c))| (s, o, c))
            .collect();
        let (setpoint, fallback) = match best {
            Some((s, _)) => (s, false),
            // §3.3: "TESLA selects S_min and it will re-calibrate itself
            // later."
            None => (lo, true),
        };
        tesla_obs::histogram!("bo_iterations_to_converge_iterations")
            .observe(iterations_run as f64);
        if fallback {
            tesla_obs::counter!("bo_fallback_decisions_total").inc();
        }
        Ok(BoOutcome {
            setpoint,
            fallback,
            evaluated,
            grid,
            objective_mean: post_o.mean,
            constraint_mean: c_grid_mean.to_vec(),
        })
    }
}

/// Evaluates `f` over `xs` with up to `n_workers` scoped threads, writing
/// each result into its input's slot so the output order — and therefore
/// every downstream optimizer decision — is identical to evaluating the
/// batch serially. With `n_workers <= 1` (or a single-point batch) no
/// threads are spawned at all.
pub fn parallel_eval<F>(xs: &[f64], n_workers: usize, f: F) -> Vec<(f64, f64)>
where
    F: Fn(f64) -> (f64, f64) + Sync,
{
    let n = xs.len();
    let workers = n_workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return xs.iter().map(|&s| f(s)).collect();
    }
    let mut out = vec![(0.0, 0.0); n];
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (xs_chunk, out_chunk) in xs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, &s) in out_chunk.iter_mut().zip(xs_chunk) {
                    *slot = f(s);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimizer() -> BayesianOptimizer {
        BayesianOptimizer::new(BoConfig {
            bounds: (20.0, 35.0),
            n_init: 6,
            n_iter: 4,
            n_mc: 48,
            n_grid: 31,
            ..BoConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn finds_the_constrained_optimum() {
        // Objective peaks at 30, constraint allows only s ≤ 27:
        // the answer must sit near 27.
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 30.0) * (s - 30.0), s - 27.0), (1e-6, 1e-6), 1)
            .unwrap();
        assert!(!out.fallback);
        assert!(
            (out.setpoint - 27.0).abs() <= 1.0,
            "chose {} (expected ≈ 27)",
            out.setpoint
        );
    }

    #[test]
    fn unconstrained_peak_found_when_feasible() {
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 26.0) * (s - 26.0), -1.0), (1e-6, 1e-6), 2)
            .unwrap();
        assert!(!out.fallback);
        assert!((out.setpoint - 26.0).abs() <= 1.0, "chose {}", out.setpoint);
    }

    #[test]
    fn falls_back_to_smin_when_everything_infeasible() {
        let opt = optimizer();
        let out = opt.optimize(|_| (0.0, 5.0), (1e-6, 1e-6), 3).unwrap();
        assert!(out.fallback);
        assert_eq!(out.setpoint, 20.0);
    }

    #[test]
    fn noise_awareness_high_noise_keeps_exploring() {
        // With huge observation noise, the optimizer must still return a
        // bounded, in-range answer (and not crash).
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 25.0) * (s - 25.0), s - 30.0), (25.0, 4.0), 4)
            .unwrap();
        assert!((20.0..=35.0).contains(&out.setpoint));
    }

    #[test]
    fn outcome_carries_posterior_curves_for_fig8() {
        let opt = optimizer();
        let out = opt
            .optimize(|s| (-(s - 26.0) * (s - 26.0), s - 28.0), (1e-4, 1e-4), 5)
            .unwrap();
        assert_eq!(out.grid.len(), 31);
        assert_eq!(out.objective_mean.len(), 31);
        assert_eq!(out.constraint_mean.len(), 31);
        // Constraint mean should be increasing in s (it is s − 28).
        assert!(out.constraint_mean[30] > out.constraint_mean[0]);
        assert!(out.evaluated.len() >= 6);
    }

    #[test]
    fn config_validation() {
        assert!(BayesianOptimizer::new(BoConfig {
            bounds: (30.0, 20.0),
            ..BoConfig::default()
        })
        .is_err());
        assert!(BayesianOptimizer::new(BoConfig {
            n_init: 1,
            ..BoConfig::default()
        })
        .is_err());
        assert!(BayesianOptimizer::new(BoConfig {
            feasibility_threshold: 1.5,
            ..BoConfig::default()
        })
        .is_err());
        assert!(BayesianOptimizer::new(BoConfig {
            lengthscales: vec![],
            ..BoConfig::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let opt = optimizer();
        let run = |seed| {
            opt.optimize(|s| (-(s - 24.0) * (s - 24.0), s - 29.0), (0.01, 0.01), seed)
                .unwrap()
                .setpoint
        };
        assert_eq!(run(7), run(7));
    }

    fn objective(s: f64) -> (f64, f64) {
        ((s - 23.0).sin() - 0.02 * (s - 26.0) * (s - 26.0), s - 29.5)
    }

    #[test]
    fn batched_path_is_bit_identical_to_serial() {
        let opt = optimizer();
        for seed in [0u64, 7, 41, 1234] {
            let serial = opt
                .optimize_with_hints(objective, (0.02, 0.01), seed, &[24.5, 26.0])
                .unwrap();
            let batched = opt
                .optimize_batched(
                    |batch: &[f64]| batch.iter().map(|&s| objective(s)).collect(),
                    (0.02, 0.01),
                    seed,
                    &[24.5, 26.0],
                )
                .unwrap();
            assert_eq!(serial.setpoint, batched.setpoint, "seed {seed}");
            assert_eq!(serial.fallback, batched.fallback);
            assert_eq!(serial.evaluated, batched.evaluated);
            assert_eq!(serial.objective_mean, batched.objective_mean);
            assert_eq!(serial.constraint_mean, batched.constraint_mean);
        }
    }

    #[test]
    fn parallel_eval_is_bit_identical_to_serial() {
        let opt = optimizer();
        let serial = opt
            .optimize_with_hints(objective, (0.02, 0.01), 99, &[25.0])
            .unwrap();
        let parallel = opt
            .optimize_batched(
                |batch: &[f64]| parallel_eval(batch, 4, objective),
                (0.02, 0.01),
                99,
                &[25.0],
            )
            .unwrap();
        assert_eq!(serial.setpoint, parallel.setpoint);
        assert_eq!(serial.evaluated, parallel.evaluated);
    }

    #[test]
    fn parallel_eval_preserves_order_and_values() {
        let xs: Vec<f64> = (0..17).map(|i| i as f64 * 0.7 - 3.0).collect();
        let f = |s: f64| (s * 2.0, s - 1.0);
        for workers in [0usize, 1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_eval(&xs, workers, f),
                xs.iter().map(|&s| f(s)).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
        assert!(parallel_eval(&[], 4, f).is_empty());
    }

    #[test]
    fn eval_batch_length_mismatch_is_an_error() {
        let opt = optimizer();
        let out = opt.optimize_batched(|_batch: &[f64]| vec![(0.0, 0.0)], (0.01, 0.01), 1, &[]);
        assert!(out.is_err());
    }
}
