//! Online prediction-error monitor with bootstrap uncertainty estimation.
//!
//! §3.3: "TESLA uses an online prediction error monitor that keeps track
//! of the prediction error made by the DC time-series model within the
//! past day, which is a typical period where the data center load rises
//! and falls. The uncertainty estimates are obtained from the monitor
//! using bootstrapping."

// analysis:allow-file(panic-free-control-path): residual window
// indices are bounded by the window length checked above them.
// analysis:allow-file(no-alloc-in-decide-steady-state): bootstrap
// resampling builds per-call sample vectors bounded by window size.
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Rolling store of (objective, constraint) prediction errors.
#[derive(Debug, Clone)]
pub struct PredictionErrorMonitor {
    capacity: usize,
    obj_errors: VecDeque<f64>,
    con_errors: VecDeque<f64>,
    /// Variance returned before enough errors have been observed.
    prior_var: (f64, f64),
}

impl PredictionErrorMonitor {
    /// One day of 1-minute samples — the paper's window.
    pub const ONE_DAY_MINUTES: usize = 24 * 60;

    /// Creates a monitor holding up to `capacity` error pairs, with prior
    /// variances used until at least a handful of errors arrive.
    pub fn new(capacity: usize, prior_var: (f64, f64)) -> Self {
        PredictionErrorMonitor {
            capacity: capacity.max(1),
            obj_errors: VecDeque::new(),
            con_errors: VecDeque::new(),
            prior_var,
        }
    }

    /// Records the realized errors of a past prediction (predicted −
    /// actual, any consistent sign convention).
    pub fn record(&mut self, obj_error: f64, con_error: f64) {
        if !obj_error.is_finite() || !con_error.is_finite() {
            return; // never poison the monitor
        }
        if self.obj_errors.len() == self.capacity {
            self.obj_errors.pop_front();
            self.con_errors.pop_front();
        }
        self.obj_errors.push_back(obj_error);
        self.con_errors.push_back(con_error);
        tesla_obs::gauge!("forecast_residual_objective_kwh").set(obj_error);
        tesla_obs::gauge!("forecast_residual_constraint_celsius").set(con_error);
    }

    /// Number of stored error pairs.
    pub fn len(&self) -> usize {
        self.obj_errors.len()
    }

    /// True when no errors are stored.
    pub fn is_empty(&self) -> bool {
        self.obj_errors.is_empty()
    }

    /// Bootstrap variance estimates `(σ²_obj, σ²_con)`: draw `n_bootstrap`
    /// samples with replacement from the stored errors and take the
    /// variance of the draws (this is the spread a "noisy version" of the
    /// predicted objective/constraint would have, per Fig. 7).
    pub fn bootstrap_variances(&self, n_bootstrap: usize, seed: u64) -> (f64, f64) {
        if self.obj_errors.len() < 8 {
            return self.prior_var;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let obj: Vec<f64> = self.obj_errors.iter().copied().collect();
        let con: Vec<f64> = self.con_errors.iter().copied().collect();
        let var_of_draws = |data: &[f64], rng: &mut StdRng| -> f64 {
            let n = n_bootstrap.max(2);
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..n {
                let v = data[rng.random_range(0..data.len())];
                sum += v;
                sumsq += v * v;
            }
            let mean = sum / n as f64;
            (sumsq / n as f64 - mean * mean).max(1e-12)
        };
        (var_of_draws(&obj, &mut rng), var_of_draws(&con, &mut rng))
    }

    /// Snapshot of the stored `(objective, constraint)` error pairs, in
    /// arrival order (for checkpointing).
    pub fn error_pairs(&self) -> Vec<(f64, f64)> {
        self.obj_errors
            .iter()
            .copied()
            .zip(self.con_errors.iter().copied())
            .collect()
    }

    /// Restores a snapshot taken by
    /// [`PredictionErrorMonitor::error_pairs`], replacing the current
    /// contents. Unlike [`PredictionErrorMonitor::record`] this emits no
    /// gauges (the original process already did) but keeps the same
    /// finite-only and capacity invariants.
    pub fn restore_error_pairs(&mut self, pairs: &[(f64, f64)]) {
        self.obj_errors.clear();
        self.con_errors.clear();
        for &(o, c) in pairs {
            if !o.is_finite() || !c.is_finite() {
                continue;
            }
            if self.obj_errors.len() == self.capacity {
                self.obj_errors.pop_front();
                self.con_errors.pop_front();
            }
            self.obj_errors.push_back(o);
            self.con_errors.push_back(c);
        }
    }

    /// Mean errors (bias diagnostics).
    pub fn mean_errors(&self) -> (f64, f64) {
        if self.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.len() as f64;
        (
            self.obj_errors.iter().sum::<f64>() / n,
            self.con_errors.iter().sum::<f64>() / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_monitor_returns_prior() {
        let m = PredictionErrorMonitor::new(100, (0.5, 0.25));
        assert_eq!(m.bootstrap_variances(500, 1), (0.5, 0.25));
    }

    #[test]
    fn bootstrap_variance_tracks_true_spread() {
        let mut m = PredictionErrorMonitor::new(2000, (1.0, 1.0));
        // Errors alternating ±2 → variance 4; constraint ±0.5 → 0.25.
        for i in 0..1000 {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            m.record(2.0 * s, 0.5 * s);
        }
        let (vo, vc) = m.bootstrap_variances(2000, 7);
        assert!((vo - 4.0).abs() < 0.5, "objective var {vo}");
        assert!((vc - 0.25).abs() < 0.05, "constraint var {vc}");
    }

    #[test]
    fn window_evicts_old_errors() {
        let mut m = PredictionErrorMonitor::new(10, (1.0, 1.0));
        for _ in 0..10 {
            m.record(100.0, 100.0); // huge early errors
        }
        for _ in 0..10 {
            m.record(0.1, 0.1); // then small ones fill the window
        }
        assert_eq!(m.len(), 10);
        let (vo, _) = m.bootstrap_variances(500, 3);
        assert!(vo < 1.0, "old errors must be gone, var {vo}");
    }

    #[test]
    fn nonfinite_errors_are_rejected() {
        let mut m = PredictionErrorMonitor::new(10, (1.0, 1.0));
        m.record(f64::NAN, 0.0);
        m.record(0.0, f64::INFINITY);
        assert!(m.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut m = PredictionErrorMonitor::new(100, (1.0, 1.0));
        for i in 0..50 {
            m.record((i as f64).sin(), (i as f64).cos());
        }
        assert_eq!(m.bootstrap_variances(500, 9), m.bootstrap_variances(500, 9));
        assert_ne!(
            m.bootstrap_variances(500, 9),
            m.bootstrap_variances(500, 10)
        );
    }

    #[test]
    fn mean_errors_reports_bias() {
        let mut m = PredictionErrorMonitor::new(100, (1.0, 1.0));
        for _ in 0..20 {
            m.record(1.5, -0.5);
        }
        let (bo, bc) = m.mean_errors();
        assert!((bo - 1.5).abs() < 1e-12);
        assert!((bc + 0.5).abs() < 1e-12);
    }
}
