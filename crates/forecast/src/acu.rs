//! Air-cooling-unit (ACU) inlet-temperature sub-module — Eq. 2.
//!
//! For each internal sensor `n_a` and horizon step `l`:
//!
//! ```text
//! â^{n_a}_{t+l} = γ_0 + γ_1 s_{t+l} + γ_2 p̂_{t+l}
//!               + Σ_{i<N_a} Σ_{j<L} γ_{i,j} a^i_{t-j}
//! ```
//!
//! — the set-point at the target step, the (predicted) average server
//! power at the target step, and the lag window of *all* inlet sensors
//! (their interdependence matters, §3.2). Trained with true exogenous
//! values; consumes ASP predictions at inference; `α_γ = 1` ridge
//! because of that train/inference input mismatch.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::design::SharedDesign;
use crate::trace::{ModelWindow, Trace};
use crate::ForecastError;
use tesla_linalg::{Matrix, Ridge};

/// Fitted ACU sub-module: `models[step][sensor]`.
#[derive(Debug, Clone)]
pub struct AcuModel {
    models: Vec<Vec<Ridge>>,
    horizon: usize,
    n_sensors: usize,
}

/// Window-invariant part of the ACU regressions (`[step][sensor]` bias +
/// lag-block dot products), built once per decision by
/// [`AcuModel::prepare`].
#[derive(Debug, Clone)]
pub struct PreparedAcu {
    base: Vec<Vec<f64>>,
}

impl AcuModel {
    /// Fits on a trace with horizon `l` and ridge strength `alpha`.
    pub fn fit(trace: &Trace, l: usize, alpha: f64) -> Result<Self, ForecastError> {
        trace.validate(2 * l + 1)?;
        let n_a = trace.n_acu_sensors();
        if n_a == 0 {
            return Err(ForecastError::InconsistentTrace("no ACU sensors".into()));
        }
        let t_len = trace.len();
        let rows: Vec<usize> = (l - 1..t_len - l).collect();
        let n = rows.len();

        // Shared lag block: all sensors' windows, sensor-major.
        let mut lag = Matrix::zeros(n, n_a * l);
        for (r, &t) in rows.iter().enumerate() {
            let row = lag.row_mut(r);
            for (i, col) in trace.acu_inlet.iter().enumerate() {
                row[i * l..(i + 1) * l].copy_from_slice(&col[t + 1 - l..=t]);
            }
        }
        let design = SharedDesign::new(lag);

        let mut models = Vec::with_capacity(l);
        for step in 1..=l {
            // Exogenous columns for this step: set-point and average
            // power at t+step (true values during training).
            let mut exo = Matrix::zeros(n, 2);
            for (r, &t) in rows.iter().enumerate() {
                exo[(r, 0)] = trace.setpoint[t + step];
                exo[(r, 1)] = trace.avg_power[t + step];
            }
            let targets: Vec<Vec<f64>> = (0..n_a)
                .map(|i| rows.iter().map(|&t| trace.acu_inlet[i][t + step]).collect())
                .collect();
            models.push(design.fit_multi(Some(&exo), &targets, alpha)?);
        }
        Ok(AcuModel {
            models,
            horizon: l,
            n_sensors: n_a,
        })
    }

    /// Horizon length `L`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of inlet sensors `N_a`.
    pub fn n_sensors(&self) -> usize {
        self.n_sensors
    }

    /// Hoists the window-dependent part of every per-(step, sensor)
    /// regression: the folded bias plus the `N_a·L` lag-block dot product,
    /// accumulated in exactly the order [`AcuModel::predict`] uses so
    /// prepared predictions are bit-identical to direct ones. Within one
    /// optimizer decision the lag window is fixed, so this runs once and
    /// [`AcuModel::predict_prepared`] only pays for the two exogenous
    /// terms per model.
    pub fn prepare(&self, window: &ModelWindow) -> Result<PreparedAcu, ForecastError> {
        let l = self.horizon;
        if window.inlet.len() != self.n_sensors || window.inlet.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("inlet lag shape mismatch".into()));
        }
        let mut lag = Vec::with_capacity(self.n_sensors * l);
        for col in &window.inlet {
            lag.extend_from_slice(col);
        }
        let base = self
            .models
            .iter()
            .map(|step_models| {
                step_models
                    .iter()
                    .map(|m| {
                        let w = m.folded_weights();
                        let mut acc = m.bias();
                        for (wi, xi) in w[..lag.len()].iter().zip(&lag) {
                            acc += wi * xi;
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(PreparedAcu { base })
    }

    /// Predicts inlet temperatures under a *constant* set-point from a
    /// prepared lag base — bit-identical to [`AcuModel::predict`] with
    /// `setpoints = [setpoint; L]` on the window `prep` was built from.
    /// Returns `[sensor][step]`.
    pub fn predict_prepared(
        &self,
        prep: &PreparedAcu,
        setpoint: f64, // lint:allow(no-raw-f64-in-public-api): hot-path candidate value
        power_pred: &[f64], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    ) -> Result<Vec<Vec<f64>>, ForecastError> {
        let l = self.horizon;
        if power_pred.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "ACU expects {l} power predictions, got {}",
                power_pred.len()
            )));
        }
        if prep.base.len() != l || prep.base.iter().any(|row| row.len() != self.n_sensors) {
            return Err(ForecastError::BadWindow(
                "prepared ACU base shape mismatch".into(),
            ));
        }
        let sp_idx = self.n_sensors * l;
        let mut out = vec![vec![0.0; l]; self.n_sensors];
        for (step, step_models) in self.models.iter().enumerate() {
            for (i, m) in step_models.iter().enumerate() {
                let w = m.folded_weights();
                // Same accumulation order as `predict`: lags (already in
                // the base), then set-point, then power.
                let mut acc = prep.base[step][i];
                acc += w[sp_idx] * setpoint;
                acc += w[sp_idx + 1] * power_pred[step];
                out[i][step] = acc;
            }
        }
        Ok(out)
    }

    /// Predicts inlet temperatures for the next `L` steps.
    ///
    /// * `window` — past `L` samples (only the inlet lags are used).
    /// * `setpoints` — the set-point at each future step (`L` values; the
    ///   TESLA optimizer passes a constant sequence).
    /// * `power_pred` — ASP's power predictions (`L` values).
    ///
    /// Returns `[sensor][step]`.
    pub fn predict(
        &self,
        window: &ModelWindow,
        setpoints: &[f64], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
        power_pred: &[f64], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    ) -> Result<Vec<Vec<f64>>, ForecastError> {
        let l = self.horizon;
        if setpoints.len() != l || power_pred.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "ACU expects {l} setpoints and power predictions, got {} and {}",
                setpoints.len(),
                power_pred.len()
            )));
        }
        if window.inlet.len() != self.n_sensors || window.inlet.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("inlet lag shape mismatch".into()));
        }
        let mut features = Vec::with_capacity(self.n_sensors * l + 2);
        for col in &window.inlet {
            features.extend_from_slice(col);
        }
        features.push(0.0); // set-point slot
        features.push(0.0); // power slot
        let sp_idx = self.n_sensors * l;

        let mut out = vec![vec![0.0; l]; self.n_sensors];
        for (step, step_models) in self.models.iter().enumerate() {
            features[sp_idx] = setpoints[step];
            features[sp_idx + 1] = power_pred[step];
            for (i, m) in step_models.iter().enumerate() {
                out[i][step] = m.predict(&features);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic trace with a known linear relation: both inlet sensors
    /// relax toward `0.5·setpoint + 2·power`.
    fn synthetic_trace(t: usize) -> Trace {
        let mut tr = Trace::with_sensors(2, 1);
        let mut a0 = 24.0;
        let mut a1 = 24.2;
        for i in 0..t {
            let sp = 22.0 + ((i / 7) % 10) as f64 * 0.5;
            let p = 3.0 + ((i / 13) % 5) as f64 * 0.4;
            let target = 0.5 * sp + 2.0 * p;
            a0 += 0.3 * (target - a0);
            a1 += 0.25 * (target + 0.2 - a1);
            tr.push(p, &[a0, a1], &[20.0], sp, 0.03, 2.0);
        }
        tr
    }

    #[test]
    fn predicts_relaxation_dynamics_well() {
        let tr = synthetic_trace(600);
        let l = 6;
        let model = AcuModel::fit(&tr, l, 1.0).unwrap();
        // Evaluate one window against ground truth with TRUE exogenous
        // inputs (isolating the sub-module).
        let t = 300;
        let window = tr.window_at(t, l).unwrap();
        let setpoints: Vec<f64> = (1..=l).map(|s| tr.setpoint[t + s]).collect();
        let power: Vec<f64> = (1..=l).map(|s| tr.avg_power[t + s]).collect();
        let preds = model.predict(&window, &setpoints, &power).unwrap();
        for (i, row) in preds.iter().enumerate().take(2) {
            for (step, &p) in row.iter().enumerate().take(l) {
                let truth = tr.acu_inlet[i][t + 1 + step];
                assert!(
                    (p - truth).abs() < 0.3,
                    "sensor {i} step {step}: {p} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn setpoint_influences_prediction() {
        let tr = synthetic_trace(600);
        let l = 6;
        let model = AcuModel::fit(&tr, l, 1.0).unwrap();
        let window = tr.window_at(300, l).unwrap();
        let power = vec![4.0; l];
        let low = model.predict(&window, &vec![21.0; l], &power).unwrap();
        let high = model.predict(&window, &vec![27.0; l], &power).unwrap();
        // Higher set-point → warmer predicted inlet (later steps at least).
        assert!(
            high[0][l - 1] > low[0][l - 1] + 0.5,
            "high {} vs low {}",
            high[0][l - 1],
            low[0][l - 1]
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        let tr = synthetic_trace(300);
        let model = AcuModel::fit(&tr, 5, 1.0).unwrap();
        let window = tr.window_at(100, 5).unwrap();
        assert!(model.predict(&window, &[23.0; 4], &[3.0; 5]).is_err());
        assert!(model.predict(&window, &[23.0; 5], &[3.0; 4]).is_err());
        let bad_window = tr.window_at(100, 4).unwrap();
        assert!(model.predict(&bad_window, &[23.0; 5], &[3.0; 5]).is_err());
    }

    #[test]
    fn output_shape_is_sensor_by_step() {
        let tr = synthetic_trace(300);
        let l = 4;
        let model = AcuModel::fit(&tr, l, 1.0).unwrap();
        let window = tr.window_at(100, l).unwrap();
        let preds = model.predict(&window, &[23.0; 4], &[3.0; 4]).unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].len(), 4);
    }
}
