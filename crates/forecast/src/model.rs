//! The composed DC time-series model (Fig. 6).

// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::acu::{AcuModel, PreparedAcu};
use crate::asp::AspModel;
use crate::dcs::{DcsModel, PreparedDcs};
use crate::energy::EnergyModel;
use crate::trace::{ModelWindow, Trace};
use crate::ForecastError;
use tesla_units::{Celsius, KilowattHours};

/// Model hyper-parameters (Table 2 defaults).
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Prediction horizon `L` (20 in Table 2).
    pub horizon: usize,
    /// ASP regularization `α_β` (0: OLS, its inputs are always true).
    pub alpha_asp: f64,
    /// ACU regularization `α_γ` (1).
    pub alpha_acu: f64,
    /// DCS regularization `α_θ` (1).
    pub alpha_dcs: f64,
    /// Energy regularization `α_φ` (1).
    pub alpha_energy: f64, // lint:allow(no-raw-f64-in-public-api): dimensionless ridge weight
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            horizon: 20,
            alpha_asp: 0.0,
            alpha_acu: 1.0,
            alpha_dcs: 1.0,
            alpha_energy: 1.0,
        }
    }
}

/// Full prediction over the `L`-step horizon for one candidate set-point
/// sequence.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted average server power per step, kW.
    pub power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    /// Predicted ACU inlet temperature, `[N_a][L]`, °C.
    pub inlet: Vec<Vec<f64>>,
    /// Predicted rack sensor temperatures, `[N_d][L]`, °C.
    pub dc: Vec<Vec<f64>>,
    /// Predicted cooling energy over the horizon.
    pub energy: KilowattHours,
}

impl Prediction {
    /// Max predicted temperature over the given sensor subset and all
    /// steps — the left side of the thermal constraint (Eq. 9).
    pub fn max_over_sensors(&self, sensors: impl IntoIterator<Item = usize>) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for k in sensors {
            if let Some(series) = self.dc.get(k) {
                for &v in series {
                    best = best.max(v);
                }
            }
        }
        best
    }
}

/// TESLA's four-sub-module DC time-series model.
#[derive(Debug, Clone)]
pub struct DcTimeSeriesModel {
    asp: AspModel,
    acu: AcuModel,
    dcs: DcsModel,
    energy: EnergyModel,
    config: ModelConfig,
    n_acu: usize,
    n_dc: usize,
}

impl DcTimeSeriesModel {
    /// Trains all four sub-modules on a trace.
    ///
    /// The sub-modules are independent given the trace (§3.2 trains them
    /// "separately" on true values), so the two expensive ones are fitted
    /// on parallel rayon branches.
    // analysis:setup: model (re)training is the periodic fit phase, sized
    // by history length; the steady-state decide loop only *reads* the
    // fitted model through prepare()/predict().
    pub fn fit(trace: &Trace, config: ModelConfig) -> Result<Self, ForecastError> {
        let _fit_timer = tesla_obs::Timer::start(tesla_obs::histogram!("forecast_fit_seconds"));
        let l = config.horizon;
        trace.validate(2 * l + 1)?;
        let ((asp, energy), (acu, dcs)) = rayon::join(
            || {
                (
                    AspModel::fit(trace, l, config.alpha_asp),
                    EnergyModel::fit(trace, l, config.alpha_energy),
                )
            },
            || {
                rayon::join(
                    || AcuModel::fit(trace, l, config.alpha_acu),
                    || DcsModel::fit(trace, l, config.alpha_dcs),
                )
            },
        );
        Ok(DcTimeSeriesModel {
            asp: asp?,
            acu: acu?,
            dcs: dcs?,
            energy: energy?,
            n_acu: trace.n_acu_sensors(),
            n_dc: trace.n_dc_sensors(),
            config,
        })
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of ACU inlet sensors the model was trained with.
    pub fn n_acu_sensors(&self) -> usize {
        self.n_acu
    }

    /// Number of rack sensors the model was trained with.
    pub fn n_dc_sensors(&self) -> usize {
        self.n_dc
    }

    /// Predicts the horizon under a *constant* candidate set-point — the
    /// form the optimizer uses (Eq. 5 constrains `s_{t+1} = … = s_{t+L}`).
    pub fn predict(
        &self,
        window: &ModelWindow,
        setpoint: Celsius,
    ) -> Result<Prediction, ForecastError> {
        self.predict_with_setpoints(window, &vec![setpoint; self.config.horizon])
    }

    /// Builds a per-decision prepared predictor for this window.
    ///
    /// Everything that depends only on the lag window — the full ASP
    /// rollout plus the `sensors × steps × lags` dot products inside the
    /// ACU and DCS sub-modules — is computed once here; each subsequent
    /// [`PreparedDecision::predict`] call pays only for the candidate-
    /// dependent exogenous terms. This is the forecast side of the ≥5×
    /// decide-latency win (see `docs/PERFORMANCE.md`): the optimizer
    /// probes ~20 candidate set-points per decision against the *same*
    /// window.
    pub fn prepare(&self, window: &ModelWindow) -> Result<PreparedDecision<'_>, ForecastError> {
        let _prepare_timer =
            tesla_obs::Timer::start(tesla_obs::histogram!("forecast_prepare_seconds"));
        let l = self.config.horizon;
        window.check_shape(l, self.n_acu, self.n_dc)?;
        let power = self.asp.predict(&window.power)?;
        let acu = self.acu.prepare(window)?;
        let dcs = self.dcs.prepare(window, &power)?;
        Ok(PreparedDecision {
            model: self,
            power,
            acu,
            dcs,
        })
    }

    /// Predicts the horizon under an arbitrary future set-point sequence.
    ///
    /// Chain per Fig. 6: ASP → ACU (uses ASP output) → DCS (uses both) and
    /// energy (uses set-points + ACU output).
    pub fn predict_with_setpoints(
        &self,
        window: &ModelWindow,
        setpoints: &[Celsius],
    ) -> Result<Prediction, ForecastError> {
        let _predict_timer =
            tesla_obs::Timer::start(tesla_obs::histogram!("forecast_predict_seconds"));
        let l = self.config.horizon;
        window.check_shape(l, self.n_acu, self.n_dc)?;
        if setpoints.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "expected {l} future setpoints, got {}",
                setpoints.len()
            )));
        }
        let raw_setpoints = Celsius::to_raw_vec(setpoints);
        let power = self.asp.predict(&window.power)?;
        let inlet = self.acu.predict(window, &raw_setpoints, &power)?;
        let dc = self.dcs.predict(window, &power, &inlet)?;
        let energy = self.energy.predict(setpoints, &inlet)?;
        Ok(Prediction {
            power,
            inlet,
            dc,
            energy,
        })
    }
}

/// A predictor specialized to one lag window (one control decision).
///
/// Produced by [`DcTimeSeriesModel::prepare`]; each [`Self::predict`]
/// call is bit-identical to [`DcTimeSeriesModel::predict`] on the same
/// window — the hoisted dot products accumulate in the exact order the
/// direct path uses, so batched/parallel callers make the same decisions
/// as serial ones.
#[derive(Debug)]
pub struct PreparedDecision<'m> {
    model: &'m DcTimeSeriesModel,
    /// ASP rollout for the window (window-only, candidate-independent).
    power: Vec<f64>,
    acu: PreparedAcu,
    dcs: PreparedDcs,
}

impl PreparedDecision<'_> {
    /// The ASP power rollout shared by every candidate.
    // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Predicts the horizon under a *constant* candidate set-point.
    pub fn predict(&self, setpoint: Celsius) -> Result<Prediction, ForecastError> {
        let _predict_timer =
            tesla_obs::Timer::start(tesla_obs::histogram!("forecast_predict_seconds"));
        let l = self.model.config.horizon;
        let inlet = self
            .model
            .acu
            .predict_prepared(&self.acu, setpoint.value(), &self.power)?;
        let dc = self.model.dcs.predict_prepared(&self.dcs, &inlet)?;
        let energy = self.model.energy.predict(&vec![setpoint; l], &inlet)?;
        Ok(Prediction {
            power: self.power.clone(),
            inlet,
            dc,
            energy,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A coupled synthetic plant: power random-walks, inlet follows
    /// set-point + power, sensors follow inlet.
    pub(crate) fn coupled_trace(t: usize, seed: u64) -> Trace {
        let mut tr = Trace::with_sensors(2, 4);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rand = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let mut p = 4.0;
        let mut a = [24.0, 24.2];
        let mut d = [19.0, 19.5, 20.0, 23.0];
        for i in 0..t {
            let sp = 21.0 + ((i / 10) % 12) as f64 * 0.4;
            p = (p + 0.2 * rand()).clamp(2.5, 8.0);
            for (j, aj) in a.iter_mut().enumerate() {
                *aj += 0.3 * (0.55 * sp + 1.6 * p + j as f64 * 0.2 - *aj) + 0.02 * rand();
            }
            let abar = (a[0] + a[1]) / 2.0;
            for (k, dk) in d.iter_mut().enumerate() {
                *dk += 0.3 * (abar - 5.0 + k as f64 * 0.8 + 0.2 * p - *dk) + 0.02 * rand();
            }
            let e = (0.02 + 0.012 * (abar - sp)).max(0.002);
            tr.push(p, &a, &d, sp, e, e * 60.0);
        }
        tr
    }

    #[test]
    fn fit_and_predict_end_to_end() {
        let tr = coupled_trace(800, 3);
        let cfg = ModelConfig {
            horizon: 8,
            ..ModelConfig::default()
        };
        let model = DcTimeSeriesModel::fit(&tr, cfg).unwrap();
        let t = 400;
        let window = tr.window_at(t, 8).unwrap();
        let truth_sp = tr.setpoint[t + 1]; // roughly constant over 10 steps
        let pred = model.predict(&window, Celsius::new(truth_sp)).unwrap();
        assert_eq!(pred.power.len(), 8);
        assert_eq!(pred.inlet.len(), 2);
        assert_eq!(pred.dc.len(), 4);
        assert!(pred.energy.value() > 0.0);
        // Predictions land in a plausible neighborhood of the truth.
        for step in 0..8 {
            let truth = tr.dc_temps[0][t + 1 + step];
            assert!(
                (pred.dc[0][step] - truth).abs() < 1.5,
                "step {step}: {} vs {truth}",
                pred.dc[0][step]
            );
        }
    }

    #[test]
    fn higher_setpoint_predicts_less_energy_and_warmer_sensors() {
        let tr = coupled_trace(800, 7);
        let cfg = ModelConfig {
            horizon: 8,
            ..ModelConfig::default()
        };
        let model = DcTimeSeriesModel::fit(&tr, cfg).unwrap();
        let window = tr.window_at(400, 8).unwrap();
        let lo = model.predict(&window, Celsius::new(21.0)).unwrap();
        let hi = model.predict(&window, Celsius::new(26.0)).unwrap();
        assert!(
            hi.energy < lo.energy,
            "hi {} vs lo {}",
            hi.energy,
            lo.energy
        );
        assert!(hi.max_over_sensors(0..4) > lo.max_over_sensors(0..4));
    }

    #[test]
    fn max_over_sensors_subsets() {
        let pred = Prediction {
            power: vec![],
            inlet: vec![],
            dc: vec![vec![1.0, 5.0], vec![9.0, 2.0], vec![3.0, 3.0]],
            energy: KilowattHours::new(0.0),
        };
        assert_eq!(pred.max_over_sensors(0..2), 9.0);
        assert_eq!(pred.max_over_sensors([0usize, 2]), 5.0);
        assert_eq!(pred.max_over_sensors([2usize]), 3.0);
    }

    #[test]
    fn window_shape_is_validated() {
        let tr = coupled_trace(400, 1);
        let cfg = ModelConfig {
            horizon: 6,
            ..ModelConfig::default()
        };
        let model = DcTimeSeriesModel::fit(&tr, cfg).unwrap();
        let bad = tr.window_at(200, 5).unwrap();
        assert!(model.predict(&bad, Celsius::new(23.0)).is_err());
        let good = tr.window_at(200, 6).unwrap();
        assert!(model
            .predict_with_setpoints(&good, &[Celsius::new(23.0); 4])
            .is_err());
    }

    #[test]
    fn prepared_predictions_bit_identical_to_direct() {
        let tr = coupled_trace(800, 11);
        let cfg = ModelConfig {
            horizon: 8,
            ..ModelConfig::default()
        };
        let model = DcTimeSeriesModel::fit(&tr, cfg).unwrap();
        let window = tr.window_at(400, 8).unwrap();
        let prep = model.prepare(&window).unwrap();
        assert_eq!(prep.power().len(), 8);
        for sp in [20.5, 22.0, 23.75, 26.0, 29.1] {
            let direct = model.predict(&window, Celsius::new(sp)).unwrap();
            let fast = prep.predict(Celsius::new(sp)).unwrap();
            assert_eq!(direct.power, fast.power, "sp {sp}");
            assert_eq!(direct.inlet, fast.inlet, "sp {sp}");
            assert_eq!(direct.dc, fast.dc, "sp {sp}");
            assert_eq!(direct.energy.value(), fast.energy.value(), "sp {sp}");
        }
    }

    #[test]
    fn prepare_validates_window_shape() {
        let tr = coupled_trace(400, 1);
        let cfg = ModelConfig {
            horizon: 6,
            ..ModelConfig::default()
        };
        let model = DcTimeSeriesModel::fit(&tr, cfg).unwrap();
        assert!(model.prepare(&tr.window_at(200, 5).unwrap()).is_err());
        assert!(model.prepare(&tr.window_at(200, 6).unwrap()).is_ok());
    }

    #[test]
    fn default_config_matches_table2() {
        let c = ModelConfig::default();
        assert_eq!(c.horizon, 20);
        assert_eq!(c.alpha_asp, 0.0);
        assert_eq!(c.alpha_acu, 1.0);
        assert_eq!(c.alpha_dcs, 1.0);
        assert_eq!(c.alpha_energy, 1.0);
    }
}
