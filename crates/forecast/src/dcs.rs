//! Data-center sensor (DCS) sub-module — Eq. 3.
//!
//! For each rack sensor `n_d` and horizon step `l`:
//!
//! ```text
//! d̂^{n_d}_{t+l} = θ_0 + θ_1 p̂_{t+l} + Σ_{i<N_a} θ_i â^i_{t+l}
//!               + Σ_{k<N_d} Σ_{j<L} θ_{k,j} d^k_{t-j}
//! ```
//!
//! The exogenous inputs (predicted average power = heat generation rate,
//! predicted ACU inlet temps = heat removal rate) carry the load and
//! cooling influence; the `N_d · L` lag block captures the sensors'
//! interdependence. `α_θ = 1` ridge (Table 2): at inference the exogenous
//! values are predictions, so the weights must not amplify their errors.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::design::SharedDesign;
use crate::trace::{ModelWindow, Trace};
use crate::ForecastError;
use tesla_linalg::{Matrix, Ridge};

/// Fitted DCS sub-module: `models[step][sensor]`.
#[derive(Debug, Clone)]
pub struct DcsModel {
    models: Vec<Vec<Ridge>>,
    horizon: usize,
    n_dc: usize,
    n_acu: usize,
}

/// Decision-invariant part of the DCS regressions (the `[step][sensor]`
/// bias plus the `N_d·L` lag dot product and the power term), built once
/// per decision by [`DcsModel::prepare`]. This is the single biggest
/// hoist in the whole predict chain: with defaults it removes
/// ~`N_d·L·(N_d·L+1)` multiplies per candidate, leaving only the `N_a`
/// inlet terms.
#[derive(Debug, Clone)]
pub struct PreparedDcs {
    base: Vec<Vec<f64>>,
}

impl DcsModel {
    /// Fits on a trace with horizon `l` and ridge strength `alpha`.
    pub fn fit(trace: &Trace, l: usize, alpha: f64) -> Result<Self, ForecastError> {
        trace.validate(2 * l + 1)?;
        let n_d = trace.n_dc_sensors();
        let n_a = trace.n_acu_sensors();
        if n_d == 0 {
            return Err(ForecastError::InconsistentTrace("no DC sensors".into()));
        }
        let t_len = trace.len();
        let rows: Vec<usize> = (l - 1..t_len - l).collect();
        let n = rows.len();

        // Shared lag block: every rack sensor's window, sensor-major.
        let mut lag = Matrix::zeros(n, n_d * l);
        for (r, &t) in rows.iter().enumerate() {
            let row = lag.row_mut(r);
            for (k, col) in trace.dc_temps.iter().enumerate() {
                row[k * l..(k + 1) * l].copy_from_slice(&col[t + 1 - l..=t]);
            }
        }
        let design = SharedDesign::new(lag);

        let mut models = Vec::with_capacity(l);
        for step in 1..=l {
            // Exogenous: power and each inlet sensor at t+step (true
            // values during training).
            let mut exo = Matrix::zeros(n, 1 + n_a);
            for (r, &t) in rows.iter().enumerate() {
                exo[(r, 0)] = trace.avg_power[t + step];
                for i in 0..n_a {
                    exo[(r, 1 + i)] = trace.acu_inlet[i][t + step];
                }
            }
            let targets: Vec<Vec<f64>> = (0..n_d)
                .map(|k| rows.iter().map(|&t| trace.dc_temps[k][t + step]).collect())
                .collect();
            models.push(design.fit_multi(Some(&exo), &targets, alpha)?);
        }
        Ok(DcsModel {
            models,
            horizon: l,
            n_dc: n_d,
            n_acu: n_a,
        })
    }

    /// Horizon length `L`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of rack sensors `N_d`.
    pub fn n_sensors(&self) -> usize {
        self.n_dc
    }

    /// Hoists everything that does not depend on the candidate set-point:
    /// the folded bias, the `N_d·L` lag-block dot product, and the power
    /// term (ASP output is fixed within a decision). Accumulation order
    /// matches [`DcsModel::predict`] exactly — lags first, then power —
    /// so prepared predictions are bit-identical to direct ones.
    pub fn prepare(
        &self,
        window: &ModelWindow,
        power_pred: &[f64], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    ) -> Result<PreparedDcs, ForecastError> {
        let l = self.horizon;
        if power_pred.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "DCS expects {l} power predictions, got {}",
                power_pred.len()
            )));
        }
        if window.dc.len() != self.n_dc || window.dc.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("dc lag shape mismatch".into()));
        }
        let mut lag = Vec::with_capacity(self.n_dc * l);
        for col in &window.dc {
            lag.extend_from_slice(col);
        }
        let exo_base = self.n_dc * l;
        let base = self
            .models
            .iter()
            .enumerate()
            .map(|(step, step_models)| {
                step_models
                    .iter()
                    .map(|m| {
                        let w = m.folded_weights();
                        let mut acc = m.bias();
                        for (wi, xi) in w[..lag.len()].iter().zip(&lag) {
                            acc += wi * xi;
                        }
                        acc += w[exo_base] * power_pred[step];
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(PreparedDcs { base })
    }

    /// Predicts every rack sensor from a prepared base and candidate
    /// inlet predictions — bit-identical to [`DcsModel::predict`] with
    /// the window and power `prep` was built from. Returns
    /// `[sensor][step]`.
    pub fn predict_prepared(
        &self,
        prep: &PreparedDcs,
        inlet_pred: &[Vec<f64>], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    ) -> Result<Vec<Vec<f64>>, ForecastError> {
        let l = self.horizon;
        if inlet_pred.len() != self.n_acu || inlet_pred.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow(
                "inlet prediction shape mismatch".into(),
            ));
        }
        if prep.base.len() != l || prep.base.iter().any(|row| row.len() != self.n_dc) {
            return Err(ForecastError::BadWindow(
                "prepared DCS base shape mismatch".into(),
            ));
        }
        let exo_base = self.n_dc * l;
        let mut out = vec![vec![0.0; l]; self.n_dc];
        for (step, step_models) in self.models.iter().enumerate() {
            for (k, m) in step_models.iter().enumerate() {
                let w = m.folded_weights();
                let mut acc = prep.base[step][k];
                for (i, col) in inlet_pred.iter().enumerate() {
                    acc += w[exo_base + 1 + i] * col[step];
                }
                out[k][step] = acc;
            }
        }
        Ok(out)
    }

    /// Predicts every rack sensor over the next `L` steps.
    ///
    /// * `window` — past `L` samples (only the rack-sensor lags are used).
    /// * `power_pred` — ASP predictions (`L` values).
    /// * `inlet_pred` — ACU sub-module predictions, `[N_a][L]`.
    ///
    /// Returns `[sensor][step]`.
    pub fn predict(
        &self,
        window: &ModelWindow,
        power_pred: &[f64], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
        inlet_pred: &[Vec<f64>], // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    ) -> Result<Vec<Vec<f64>>, ForecastError> {
        let l = self.horizon;
        if power_pred.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "DCS expects {l} power predictions, got {}",
                power_pred.len()
            )));
        }
        if inlet_pred.len() != self.n_acu || inlet_pred.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow(
                "inlet prediction shape mismatch".into(),
            ));
        }
        if window.dc.len() != self.n_dc || window.dc.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("dc lag shape mismatch".into()));
        }

        let mut features = Vec::with_capacity(self.n_dc * l + 1 + self.n_acu);
        for col in &window.dc {
            features.extend_from_slice(col);
        }
        let exo_base = self.n_dc * l;
        features.resize(exo_base + 1 + self.n_acu, 0.0);

        let mut out = vec![vec![0.0; l]; self.n_dc];
        for (step, step_models) in self.models.iter().enumerate() {
            features[exo_base] = power_pred[step];
            for i in 0..self.n_acu {
                features[exo_base + 1 + i] = inlet_pred[i][step];
            }
            for (k, m) in step_models.iter().enumerate() {
                out[k][step] = m.predict(&features);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace where each of 3 rack sensors relaxes toward
    /// `inlet − 4 + k·0.5 + 0.3·power`.
    fn synthetic_trace(t: usize) -> Trace {
        let mut tr = Trace::with_sensors(1, 3);
        let mut d = [18.0, 18.5, 19.0];
        let mut a = 24.0;
        for i in 0..t {
            let sp = 22.0 + ((i / 11) % 8) as f64 * 0.5;
            let p = 3.0 + ((i / 17) % 4) as f64 * 0.5;
            a += 0.3 * (0.6 * sp + 1.8 * p - a);
            for (k, dk) in d.iter_mut().enumerate() {
                let target = a - 4.0 + k as f64 * 0.5 + 0.3 * p;
                *dk += 0.35 * (target - *dk);
            }
            tr.push(p, &[a], &d, sp, 0.03, 2.0);
        }
        tr
    }

    #[test]
    fn predicts_sensor_relaxation_with_true_exogenous_inputs() {
        let tr = synthetic_trace(600);
        const L: usize = 6;
        let model = DcsModel::fit(&tr, L, 1.0).unwrap();
        let t = 300;
        let window = tr.window_at(t, L).unwrap();
        let power: Vec<f64> = (1..=L).map(|s| tr.avg_power[t + s]).collect();
        let inlet: Vec<Vec<f64>> = vec![(1..=L).map(|s| tr.acu_inlet[0][t + s]).collect()];
        let preds = model.predict(&window, &power, &inlet).unwrap();
        for (k, row) in preds.iter().enumerate().take(3) {
            for (step, &p) in row.iter().enumerate().take(L) {
                let truth = tr.dc_temps[k][t + 1 + step];
                assert!(
                    (p - truth).abs() < 0.3,
                    "sensor {k} step {step}: {p} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn warmer_inlet_prediction_raises_dc_prediction() {
        let tr = synthetic_trace(600);
        const L: usize = 5;
        let model = DcsModel::fit(&tr, L, 1.0).unwrap();
        let window = tr.window_at(300, L).unwrap();
        let power = vec![4.0; L];
        let cool = model.predict(&window, &power, &[vec![22.0; L]]).unwrap();
        let warm = model.predict(&window, &power, &[vec![28.0; L]]).unwrap();
        assert!(warm[0][L - 1] > cool[0][L - 1] + 0.5);
    }

    #[test]
    fn shape_validation() {
        let tr = synthetic_trace(300);
        const L: usize = 4;
        let model = DcsModel::fit(&tr, L, 1.0).unwrap();
        let window = tr.window_at(100, L).unwrap();
        assert!(model.predict(&window, &[3.0; 3], &[vec![23.0; L]]).is_err());
        assert!(model.predict(&window, &[3.0; L], &[vec![23.0; 2]]).is_err());
        assert!(model
            .predict(&window, &[3.0; L], &[vec![23.0; L], vec![23.0; L]])
            .is_err());
    }

    #[test]
    fn per_sensor_offsets_are_learned() {
        let tr = synthetic_trace(600);
        const L: usize = 4;
        let model = DcsModel::fit(&tr, L, 1.0).unwrap();
        let window = tr.window_at(300, L).unwrap();
        let power = vec![3.5; L];
        let inlet = vec![vec![24.0; L]];
        let preds = model.predict(&window, &power, &inlet).unwrap();
        // Sensor 2 reads ~1.0 °C above sensor 0 by construction.
        let gap = preds[2][L - 1] - preds[0][L - 1];
        assert!((gap - 1.0).abs() < 0.4, "offset gap {gap}");
    }
}
