//! Cooling-energy sub-module — Eq. 4.
//!
//! §2.2 shows instantaneous ACU power is too noisy to regress on a
//! set-point, so the paper models the *energy over the horizon* instead:
//!
//! ```text
//! Ê^L_{t+1} = φ_0 + Σ_{i=1}^{L} φ_i s_{t+i}
//!           + Σ_{n_a<N_a} Σ_{i=1}^{L} φ_{n_a,i} â^{n_a}_{t+i}
//! ```
//!
//! Inputs are the future set-points and inlet temperatures over the
//! interval — exactly the two signals whose difference (the PID residual
//! error) drives compressor power. The target is the numerically
//! integrated energy of the observed instantaneous power trace, in kWh.
//! `α_φ = 1` ridge: inference feeds it *predicted* inlet temperatures.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::trace::Trace;
use crate::ForecastError;
use tesla_linalg::{fit_ridge, Matrix, Ridge};
use tesla_units::{Celsius, KilowattHours};

/// Fitted cooling-energy sub-module (a single regression).
#[derive(Debug, Clone)]
pub struct EnergyModel {
    model: Ridge,
    horizon: usize,
    n_acu: usize,
    /// Physical floor on the prediction: during cooling interruption the
    /// ACU still draws fan power, so horizon energy can never drop below
    /// the smallest energy seen in training. A pure linear map happily
    /// extrapolates below (even under) zero there, which wrecks relative
    /// error exactly where the optimizer's energy-saving incentive is
    /// strongest.
    floor_kwh: f64,
}

impl EnergyModel {
    /// Fits on a trace with horizon `l` and ridge strength `alpha`.
    pub fn fit(trace: &Trace, l: usize, alpha: f64) -> Result<Self, ForecastError> {
        trace.validate(2 * l + 1)?;
        let n_a = trace.n_acu_sensors();
        let t_len = trace.len();
        let rows: Vec<usize> = (l - 1..t_len - l).collect();
        let n = rows.len();
        let d = l + n_a * l;

        let mut x = Matrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for (r, &t) in rows.iter().enumerate() {
            let row = x.row_mut(r);
            Self::fill_features(
                row,
                l,
                n_a,
                |i| trace.setpoint[t + i],
                |na, i| trace.acu_inlet[na][t + i],
            );
            // Energy over t+1 ..= t+L: sum of the per-period kWh column
            // (itself the integral of instantaneous power, §3.2).
            y.push(trace.acu_energy[t + 1..=t + l].iter().sum());
        }
        let floor_kwh = y.iter().cloned().fold(f64::INFINITY, f64::min).max(0.0);
        let model = fit_ridge(&x, &y, alpha)?;
        Ok(EnergyModel {
            model,
            horizon: l,
            n_acu: n_a,
            floor_kwh,
        })
    }

    /// The physical lower bound applied to predictions.
    pub fn floor_kwh(&self) -> KilowattHours {
        KilowattHours::new(self.floor_kwh)
    }

    fn fill_features(
        row: &mut [f64],
        l: usize,
        n_a: usize,
        sp: impl Fn(usize) -> f64,
        inlet: impl Fn(usize, usize) -> f64,
    ) {
        for i in 1..=l {
            row[i - 1] = sp(i);
        }
        for na in 0..n_a {
            for i in 1..=l {
                row[l + na * l + (i - 1)] = inlet(na, i);
            }
        }
    }

    /// Horizon length `L`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Predicts the cooling energy over the next `L` steps.
    ///
    /// * `setpoints` — future set-points, `L` values.
    /// * `inlet_pred` — *predicted* inlet temperatures, `[N_a][L]`. These
    ///   stay raw `f64`: they are bulk model output, not validated
    ///   measurements.
    pub fn predict(
        &self,
        setpoints: &[Celsius],
        inlet_pred: &[Vec<f64>], // lint:allow(no-raw-f64-in-public-api): bulk prediction matrix
    ) -> Result<KilowattHours, ForecastError> {
        let l = self.horizon;
        if setpoints.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "energy model expects {l} setpoints, got {}",
                setpoints.len()
            )));
        }
        if inlet_pred.len() != self.n_acu || inlet_pred.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow(
                "energy model inlet prediction shape mismatch".into(),
            ));
        }
        let mut row = vec![0.0; l + self.n_acu * l];
        Self::fill_features(
            &mut row,
            l,
            self.n_acu,
            |i| setpoints[i - 1].value(),
            |na, i| inlet_pred[na][i - 1],
        );
        Ok(KilowattHours::new(
            self.model.predict(&row).max(self.floor_kwh),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace where per-period energy is a known linear function of the
    /// PID residual: `e_t = 0.02 + 0.01 · (a_t − s_t)` (clamped at the
    /// fan floor).
    fn synthetic_trace(t: usize) -> Trace {
        let mut tr = Trace::with_sensors(2, 1);
        let mut a = 25.0;
        for i in 0..t {
            let sp = 21.0 + ((i / 9) % 10) as f64 * 0.6;
            a += 0.25 * (sp + 1.5 - a); // inlet relaxes toward sp + 1.5
            let residual = a - sp;
            let e = (0.02 + 0.01 * residual).max(0.002);
            tr.push(3.0, &[a, a + 0.1], &[20.0], sp, e, e * 60.0);
        }
        tr
    }

    #[test]
    fn predicts_horizon_energy_accurately() {
        let tr = synthetic_trace(600);
        let l = 6;
        let model = EnergyModel::fit(&tr, l, 1.0).unwrap();
        let t = 300;
        let setpoints =
            Celsius::from_raw_slice(&(1..=l).map(|i| tr.setpoint[t + i]).collect::<Vec<_>>());
        let inlet: Vec<Vec<f64>> = (0..2)
            .map(|na| (1..=l).map(|i| tr.acu_inlet[na][t + i]).collect())
            .collect();
        let pred = model.predict(&setpoints, &inlet).unwrap().value();
        let truth: f64 = tr.acu_energy[t + 1..=t + l].iter().sum();
        assert!(
            (pred - truth).abs() < 0.01,
            "predicted {pred:.4} kWh vs true {truth:.4} kWh"
        );
    }

    #[test]
    fn lower_setpoint_predicts_more_energy() {
        // The PID works harder when the set-point is below the inlet.
        let tr = synthetic_trace(600);
        const L: usize = 5;
        let model = EnergyModel::fit(&tr, L, 1.0).unwrap();
        let inlet = vec![vec![25.0; L], vec![25.1; L]];
        let cold = model.predict(&[Celsius::new(21.0); L], &inlet).unwrap();
        let warm = model.predict(&[Celsius::new(26.0); L], &inlet).unwrap();
        assert!(
            cold > warm,
            "cold {} must exceed warm {}",
            cold.value(),
            warm.value()
        );
    }

    #[test]
    fn shape_validation() {
        let tr = synthetic_trace(300);
        const L: usize = 4;
        let model = EnergyModel::fit(&tr, L, 1.0).unwrap();
        let sp = Celsius::new(23.0);
        assert!(model
            .predict(&[sp; 3], &[vec![24.0; L], vec![24.0; L]])
            .is_err());
        assert!(model.predict(&[sp; L], &[vec![24.0; L]]).is_err());
        assert!(model
            .predict(&[sp; L], &[vec![24.0; 2], vec![24.0; L]])
            .is_err());
    }

    #[test]
    fn energy_is_nonnegative_scale() {
        let tr = synthetic_trace(600);
        const L: usize = 4;
        let model = EnergyModel::fit(&tr, L, 1.0).unwrap();
        let pred = model
            .predict(&[Celsius::new(23.0); 4], &[vec![24.5; 4], vec![24.6; 4]])
            .unwrap()
            .value();
        assert!(
            pred > 0.0 && pred < 1.0,
            "plausible kWh magnitude, got {pred}"
        );
    }
}
