//! Shared-gram multi-target ridge solver.
//!
//! The direct strategy trains `(1 + N_a + N_d) · L` independent ridge
//! regressions (§3.2). Naively that means re-computing a Gram matrix per
//! regression, but the designs share almost all of their columns: for a
//! given horizon step, every sensor's model sees the *same* lag block and
//! the same few exogenous columns; and across horizon steps only the
//! exogenous columns change. [`SharedDesign`] exploits this by computing
//! the expensive lag-block Gram once and assembling each step's full
//! (standardized, centered) normal equations from cached pieces — turning
//! an `O(L · n · d²)` training pass into `O(n · d²)` plus cheap per-step
//! cross terms.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
use crate::ForecastError;
use tesla_linalg::{Cholesky, Matrix, Ridge};

/// Computes `Xᵀ · Y` without materializing `Xᵀ` (cache-friendly row-wise
/// accumulation).
pub fn xt_y(x: &Matrix, y: &Matrix) -> Matrix {
    debug_assert_eq!(x.rows(), y.rows());
    let d = x.cols();
    let m = y.cols();
    let mut out = Matrix::zeros(d, m);
    for r in 0..x.rows() {
        let xr = x.row(r);
        let yr = y.row(r);
        for (u, &xu) in xr.iter().enumerate() {
            if xu == 0.0 {
                continue;
            }
            let orow = out.row_mut(u);
            for (o, &yv) in orow.iter_mut().zip(yr) {
                *o += xu * yv;
            }
        }
    }
    out
}

/// A design matrix whose lag block is shared across many regressions.
#[derive(Debug, Clone)]
pub struct SharedDesign {
    lag: Matrix,
    /// Raw (uncentered) Gram of the lag block, computed once.
    g_lag_raw: Matrix,
    /// Per-column sums of the lag block.
    lag_sums: Vec<f64>,
}

impl SharedDesign {
    /// Builds the shared design from the lag-feature matrix (`n` rows ×
    /// `d_lag` columns). This is where the dominant Gram cost is paid.
    pub fn new(lag: Matrix) -> Self {
        let g_lag_raw = lag.gram();
        let lag_sums = (0..lag.cols())
            .map(|j| (0..lag.rows()).map(|i| lag[(i, j)]).sum())
            .collect();
        SharedDesign {
            lag,
            g_lag_raw,
            lag_sums,
        }
    }

    /// Number of training rows.
    pub fn n(&self) -> usize {
        self.lag.rows()
    }

    /// Width of the shared lag block.
    pub fn d_lag(&self) -> usize {
        self.lag.cols()
    }

    /// Fits ridge models for every target, optionally appending per-call
    /// exogenous columns (`exo`: `n × d_exo`) after the lag block.
    ///
    /// Feature layout of the returned models: `[lag block..., exo...]`.
    /// Features are standardized internally and targets centered, exactly
    /// like [`tesla_linalg::fit_ridge`]; the intercept is unregularized.
    pub fn fit_multi(
        &self,
        exo: Option<&Matrix>,
        targets: &[Vec<f64>],
        alpha: f64,
    ) -> Result<Vec<Ridge>, ForecastError> {
        let n = self.n();
        if n == 0 {
            return Err(ForecastError::Solve("empty design".into()));
        }
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        for (i, t) in targets.iter().enumerate() {
            if t.len() != n {
                return Err(ForecastError::Solve(format!(
                    "target {i} has {} rows, design has {n}",
                    t.len()
                )));
            }
        }
        let d_lag = self.d_lag();
        let d_exo = exo.map_or(0, |e| e.cols());
        if let Some(e) = exo {
            if e.rows() != n {
                return Err(ForecastError::Solve(format!(
                    "exo has {} rows, design has {n}",
                    e.rows()
                )));
            }
        }
        let d = d_lag + d_exo;
        let nf = n as f64;

        // Column means over the combined design.
        let mut means = Vec::with_capacity(d);
        for s in &self.lag_sums {
            means.push(s / nf);
        }
        if let Some(e) = exo {
            for j in 0..d_exo {
                means.push((0..n).map(|i| e[(i, j)]).sum::<f64>() / nf);
            }
        }

        // Raw Gram of the combined design, assembled from blocks.
        let mut g_raw = Matrix::zeros(d, d);
        for u in 0..d_lag {
            for v in 0..d_lag {
                g_raw[(u, v)] = self.g_lag_raw[(u, v)];
            }
        }
        if let Some(e) = exo {
            let cross = xt_y(&self.lag, e); // d_lag × d_exo
            for u in 0..d_lag {
                for v in 0..d_exo {
                    g_raw[(u, d_lag + v)] = cross[(u, v)];
                    g_raw[(d_lag + v, u)] = cross[(u, v)];
                }
            }
            let g_ee = e.gram();
            for u in 0..d_exo {
                for v in 0..d_exo {
                    g_raw[(d_lag + u, d_lag + v)] = g_ee[(u, v)];
                }
            }
        }

        // Standard deviations from the raw Gram diagonal.
        let mut stds = Vec::with_capacity(d);
        for u in 0..d {
            let var = (g_raw[(u, u)] / nf - means[u] * means[u]).max(0.0);
            let s = var.sqrt();
            stds.push(if s > 1e-12 { s } else { 1.0 });
        }

        // Centered, standardized Gram + ridge diagonal.
        let mut g = Matrix::zeros(d, d);
        for u in 0..d {
            for v in 0..d {
                g[(u, v)] = (g_raw[(u, v)] - nf * means[u] * means[v]) / (stds[u] * stds[v]);
            }
        }
        g.add_diagonal(alpha.max(0.0));
        let chol = Cholesky::decompose_jittered(&g, 1e-8, 14)
            .map_err(|e| ForecastError::Solve(e.to_string()))?;

        // Xᵀ·Y for all targets at once.
        let m = targets.len();
        let mut y_mat = Matrix::zeros(n, m);
        let mut y_means = vec![0.0; m];
        for (t, col) in targets.iter().enumerate() {
            let mut s = 0.0;
            for (i, &v) in col.iter().enumerate() {
                y_mat[(i, t)] = v;
                s += v;
            }
            y_means[t] = s / nf;
        }
        let xty_lag = xt_y(&self.lag, &y_mat); // d_lag × m
        let xty_exo = exo.map(|e| xt_y(e, &y_mat)); // d_exo × m

        let mut models = Vec::with_capacity(m);
        for t in 0..m {
            let mut rhs = vec![0.0; d];
            for u in 0..d_lag {
                rhs[u] = (xty_lag[(u, t)] - nf * means[u] * y_means[t]) / stds[u];
            }
            if let Some(xe) = &xty_exo {
                for v in 0..d_exo {
                    let u = d_lag + v;
                    rhs[u] = (xe[(v, t)] - nf * means[u] * y_means[t]) / stds[u];
                }
            }
            let w = chol
                .solve(&rhs)
                .map_err(|e| ForecastError::Solve(e.to_string()))?;
            models.push(Ridge::from_parts(
                w,
                y_means[t],
                alpha,
                means.clone(),
                stds.clone(),
            ));
        }
        Ok(models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_linalg::fit_ridge;

    fn toy_design() -> (Matrix, Matrix, Vec<Vec<f64>>) {
        // 12 rows, 3 lag cols, 2 exo cols, 2 targets with known structure.
        let n = 12;
        let mut lag = Matrix::zeros(n, 3);
        let mut exo = Matrix::zeros(n, 2);
        let mut y0 = Vec::new();
        let mut y1 = Vec::new();
        for i in 0..n {
            let f = i as f64;
            lag[(i, 0)] = f;
            lag[(i, 1)] = (f * 0.7).sin() * 3.0;
            lag[(i, 2)] = (f * 1.3).cos() * 2.0;
            exo[(i, 0)] = f * 0.5 - 2.0;
            exo[(i, 1)] = ((i * 7) % 5) as f64;
            y0.push(2.0 * lag[(i, 0)] - lag[(i, 1)] + 0.5 * exo[(i, 0)] + 1.0);
            y1.push(-lag[(i, 2)] + 3.0 * exo[(i, 1)] - 2.0);
        }
        (lag, exo, vec![y0, y1])
    }

    #[test]
    fn matches_direct_fit_ridge() {
        let (lag, exo, targets) = toy_design();
        let design = SharedDesign::new(lag.clone());
        let models = design.fit_multi(Some(&exo), &targets, 0.5).unwrap();

        // Reference: assemble the full matrix and use fit_ridge directly.
        let n = lag.rows();
        let mut full = Matrix::zeros(n, 5);
        for i in 0..n {
            for j in 0..3 {
                full[(i, j)] = lag[(i, j)];
            }
            for j in 0..2 {
                full[(i, 3 + j)] = exo[(i, j)];
            }
        }
        for (t, target) in targets.iter().enumerate() {
            let reference = fit_ridge(&full, target, 0.5).unwrap();
            for i in 0..n {
                let a = models[t].predict(full.row(i));
                let b = reference.predict(full.row(i));
                assert!((a - b).abs() < 1e-8, "target {t} row {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_recovery_with_no_regularization() {
        let (lag, exo, targets) = toy_design();
        let design = SharedDesign::new(lag.clone());
        let models = design.fit_multi(Some(&exo), &targets, 0.0).unwrap();
        let n = lag.rows();
        for (t, target) in targets.iter().enumerate() {
            for (i, &truth) in target.iter().enumerate().take(n) {
                let mut x = lag.row(i).to_vec();
                x.extend_from_slice(exo.row(i));
                assert!(
                    (models[t].predict(&x) - truth).abs() < 1e-6,
                    "target {t} row {i}"
                );
            }
        }
    }

    #[test]
    fn works_without_exo_block() {
        let (lag, _, _) = toy_design();
        let y: Vec<f64> = (0..lag.rows()).map(|i| lag[(i, 0)] * 3.0 + 1.0).collect();
        let design = SharedDesign::new(lag.clone());
        let models = design
            .fit_multi(None, std::slice::from_ref(&y), 0.0)
            .unwrap();
        for (i, &yi) in y.iter().enumerate() {
            assert!((models[0].predict(lag.row(i)) - yi).abs() < 1e-7);
        }
    }

    #[test]
    fn rejects_mismatched_target_length() {
        let (lag, exo, _) = toy_design();
        let design = SharedDesign::new(lag);
        let bad = vec![vec![1.0, 2.0]];
        assert!(design.fit_multi(Some(&exo), &bad, 1.0).is_err());
    }

    #[test]
    fn empty_targets_return_no_models() {
        let (lag, _, _) = toy_design();
        let design = SharedDesign::new(lag);
        let models = design.fit_multi(None, &[], 1.0).unwrap();
        assert!(models.is_empty());
    }

    #[test]
    fn xt_y_matches_matmul() {
        let (lag, exo, _) = toy_design();
        let direct = xt_y(&lag, &exo);
        let reference = lag.transpose().matmul(&exo).unwrap();
        assert_eq!(direct.shape(), reference.shape());
        for u in 0..direct.rows() {
            for v in 0..direct.cols() {
                assert!((direct[(u, v)] - reference[(u, v)]).abs() < 1e-9);
            }
        }
    }
}
