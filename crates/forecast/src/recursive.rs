//! Recursive autoregressive baseline — the modeling approach of Lazic et
//! al. \[20\] compared against in Table 3.
//!
//! One collective linear model predicts *all* signals (every rack sensor,
//! every ACU inlet sensor, and the average server power) one step ahead
//! from the last two frames plus the next set-point, fitted with OLS.
//! Multi-step prediction rolls the model out recursively, feeding its own
//! outputs back — which is exactly why it loses to TESLA's direct
//! strategy: one-step errors compound over the horizon (§5.2).

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
use crate::design::SharedDesign;
use crate::trace::{ModelWindow, Trace};
use crate::ForecastError;
use tesla_linalg::{Matrix, Ridge};

/// Fitted recursive AR model.
#[derive(Debug, Clone)]
pub struct RecursiveAr {
    /// One model per signal, predicting its next value.
    models: Vec<Ridge>,
    n_dc: usize,
    n_acu: usize,
    /// Number of past frames used as input.
    order: usize,
}

impl RecursiveAr {
    /// Number of signals in the collective state vector.
    fn state_dim(n_dc: usize, n_acu: usize) -> usize {
        n_dc + n_acu + 1
    }

    /// Fits the collective one-step model with `order` past frames
    /// (Lazic-style: 2) and OLS (`alpha = 0`) or ridge.
    pub fn fit(trace: &Trace, order: usize, alpha: f64) -> Result<Self, ForecastError> {
        let order = order.max(1);
        trace.validate(order + 2)?;
        let n_dc = trace.n_dc_sensors();
        let n_acu = trace.n_acu_sensors();
        let m = Self::state_dim(n_dc, n_acu);
        let t_len = trace.len();
        let rows: Vec<usize> = (order - 1..t_len - 1).collect();
        let n = rows.len();
        let d = m * order + 1;

        let mut x = Matrix::zeros(n, d);
        for (r, &t) in rows.iter().enumerate() {
            let row = x.row_mut(r);
            for back in 0..order {
                let idx = t - back;
                Self::write_frame(&mut row[back * m..(back + 1) * m], trace, idx);
            }
            row[d - 1] = trace.setpoint[t + 1];
        }
        let design = SharedDesign::new(x);

        let targets: Vec<Vec<f64>> = (0..m)
            .map(|sig| {
                rows.iter()
                    .map(|&t| Self::signal_at(trace, sig, t + 1))
                    .collect()
            })
            .collect();
        let models = design.fit_multi(None, &targets, alpha)?;
        Ok(RecursiveAr {
            models,
            n_dc,
            n_acu,
            order,
        })
    }

    fn write_frame(dst: &mut [f64], trace: &Trace, t: usize) {
        let n_dc = trace.n_dc_sensors();
        let n_acu = trace.n_acu_sensors();
        for (d, col) in dst.iter_mut().zip(&trace.dc_temps) {
            *d = col[t];
        }
        for i in 0..n_acu {
            dst[n_dc + i] = trace.acu_inlet[i][t];
        }
        dst[n_dc + n_acu] = trace.avg_power[t];
    }

    fn signal_at(trace: &Trace, sig: usize, t: usize) -> f64 {
        let n_dc = trace.n_dc_sensors();
        let n_acu = trace.n_acu_sensors();
        if sig < n_dc {
            trace.dc_temps[sig][t]
        } else if sig < n_dc + n_acu {
            trace.acu_inlet[sig - n_dc][t]
        } else {
            trace.avg_power[t]
        }
    }

    /// AR order (past frames consumed).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Rolls the model out for `setpoints.len()` steps from the window's
    /// most recent frames. Returns the predicted rack-sensor temperatures
    /// `[N_d][steps]` (what Table 3 evaluates).
    pub fn predict_rollout(
        &self,
        window: &ModelWindow,
        setpoints: &[f64], // lint:allow(no-raw-f64-in-public-api): bulk rollout series (baseline model)
    ) -> Result<Vec<Vec<f64>>, ForecastError> {
        let m = Self::state_dim(self.n_dc, self.n_acu);
        if window.dc.len() != self.n_dc || window.inlet.len() != self.n_acu {
            return Err(ForecastError::BadWindow(
                "window sensor count mismatch".into(),
            ));
        }
        let hist = window.power.len();
        if hist < self.order {
            return Err(ForecastError::BadWindow(format!(
                "recursive model needs {} past frames, window has {hist}",
                self.order
            )));
        }
        // frames[0] = newest.
        let mut frames: Vec<Vec<f64>> = (0..self.order)
            .map(|back| {
                let idx = hist - 1 - back;
                let mut f = Vec::with_capacity(m);
                for k in 0..self.n_dc {
                    f.push(window.dc[k][idx]);
                }
                for i in 0..self.n_acu {
                    f.push(window.inlet[i][idx]);
                }
                f.push(window.power[idx]);
                f
            })
            .collect();

        let mut out = vec![Vec::with_capacity(setpoints.len()); self.n_dc];
        let d = m * self.order + 1;
        let mut features = vec![0.0; d];
        for &sp in setpoints {
            for (back, frame) in frames.iter().enumerate() {
                features[back * m..(back + 1) * m].copy_from_slice(frame);
            }
            features[d - 1] = sp;
            let next: Vec<f64> = self.models.iter().map(|mo| mo.predict(&features)).collect();
            for (k, series) in out.iter_mut().enumerate() {
                series.push(next[k]);
            }
            frames.rotate_right(1);
            frames[0] = next;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::coupled_trace;

    #[test]
    fn one_step_prediction_is_accurate() {
        let tr = coupled_trace(800, 5);
        let model = RecursiveAr::fit(&tr, 2, 0.0).unwrap();
        let t = 400;
        let window = tr.window_at(t, 8).unwrap();
        let preds = model
            .predict_rollout(&window, &[tr.setpoint[t + 1]])
            .unwrap();
        for (k, row) in preds.iter().enumerate().take(tr.n_dc_sensors()) {
            let truth = tr.dc_temps[k][t + 1];
            assert!(
                (row[0] - truth).abs() < 0.5,
                "sensor {k}: {} vs {truth}",
                row[0]
            );
        }
    }

    #[test]
    fn rollout_error_grows_with_horizon() {
        // The defining weakness: recursive error accumulation.
        let tr = coupled_trace(800, 9);
        let model = RecursiveAr::fit(&tr, 2, 0.0).unwrap();
        let l = 10;
        let mut err_first = 0.0;
        let mut err_last = 0.0;
        let mut count = 0;
        for t in (300..700).step_by(17) {
            let window = tr.window_at(t, l).unwrap();
            let sps: Vec<f64> = (1..=l).map(|s| tr.setpoint[t + s]).collect();
            let preds = model.predict_rollout(&window, &sps).unwrap();
            for (k, row) in preds.iter().enumerate().take(tr.n_dc_sensors()) {
                err_first += (row[0] - tr.dc_temps[k][t + 1]).abs();
                err_last += (row[l - 1] - tr.dc_temps[k][t + l]).abs();
                count += 1;
            }
        }
        let err_first = err_first / count as f64;
        let err_last = err_last / count as f64;
        assert!(
            err_last > err_first,
            "horizon-end error {err_last:.4} should exceed one-step error {err_first:.4}"
        );
    }

    #[test]
    fn rollout_shape() {
        let tr = coupled_trace(300, 2);
        let model = RecursiveAr::fit(&tr, 2, 0.0).unwrap();
        let window = tr.window_at(150, 6).unwrap();
        let preds = model.predict_rollout(&window, &[23.0; 7]).unwrap();
        assert_eq!(preds.len(), tr.n_dc_sensors());
        assert_eq!(preds[0].len(), 7);
    }

    #[test]
    fn window_too_short_is_rejected() {
        let tr = coupled_trace(300, 2);
        let model = RecursiveAr::fit(&tr, 3, 0.0).unwrap();
        let window = tr.window_at(150, 2).unwrap();
        assert!(model.predict_rollout(&window, &[23.0; 3]).is_err());
    }

    #[test]
    fn order_is_clamped_to_at_least_one() {
        let tr = coupled_trace(300, 2);
        let model = RecursiveAr::fit(&tr, 0, 0.0).unwrap();
        assert_eq!(model.order(), 1);
    }
}
