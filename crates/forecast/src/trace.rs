//! Trace and window containers shared by all sub-modules.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::ForecastError;
use tesla_historian::MetricStore;

/// A contiguous, per-minute telemetry trace used for training and
/// evaluation. Columns are stored signal-major (`[sensor][time]`) because
/// the forecaster consumes whole signals when building lag features.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Average per-server power `p_t`, kW.
    pub avg_power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// ACU inlet temperatures `a^i_t`, °C: `[N_a][T]`.
    pub acu_inlet: Vec<Vec<f64>>,
    /// Rack sensor temperatures `d^k_t`, °C: `[N_d][T]`.
    pub dc_temps: Vec<Vec<f64>>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// Executed set-point `s_t`, °C.
    pub setpoint: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// ACU energy consumed during each sampling period, kWh.
    pub acu_energy: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// ACU instantaneous power, kW (diagnostics and Fig. 2).
    pub acu_power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
}

impl Trace {
    /// Creates an empty trace with the given sensor counts.
    pub fn with_sensors(n_acu: usize, n_dc: usize) -> Self {
        Trace {
            avg_power: Vec::new(),
            acu_inlet: vec![Vec::new(); n_acu],
            dc_temps: vec![Vec::new(); n_dc],
            setpoint: Vec::new(),
            acu_energy: Vec::new(),
            acu_power: Vec::new(),
        }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.avg_power.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.avg_power.is_empty()
    }

    /// Number of ACU inlet sensors.
    pub fn n_acu_sensors(&self) -> usize {
        self.acu_inlet.len()
    }

    /// Number of rack sensors.
    pub fn n_dc_sensors(&self) -> usize {
        self.dc_temps.len()
    }

    /// Appends one sample across all columns.
    // lint:allow(no-raw-f64-in-public-api): raw telemetry ingestion boundary
    pub fn push(
        &mut self,
        avg_power: f64,
        acu_inlet: &[f64],
        dc_temps: &[f64],
        setpoint: f64,
        acu_energy: f64,
        acu_power: f64,
    ) {
        debug_assert_eq!(acu_inlet.len(), self.acu_inlet.len());
        debug_assert_eq!(dc_temps.len(), self.dc_temps.len());
        self.avg_power.push(avg_power);
        for (col, v) in self.acu_inlet.iter_mut().zip(acu_inlet) {
            col.push(*v);
        }
        for (col, v) in self.dc_temps.iter_mut().zip(dc_temps) {
            col.push(*v);
        }
        self.setpoint.push(setpoint);
        self.acu_energy.push(acu_energy);
        self.acu_power.push(acu_power);
    }

    /// Validates column-length consistency and a minimum length.
    pub fn validate(&self, min_len: usize) -> Result<(), ForecastError> {
        let t = self.len();
        if t < min_len {
            return Err(ForecastError::TraceTooShort {
                needed: min_len,
                got: t,
            });
        }
        for (i, col) in self.acu_inlet.iter().enumerate() {
            if col.len() != t {
                return Err(ForecastError::InconsistentTrace(format!(
                    "acu_inlet[{i}] has {} samples, expected {t}",
                    col.len()
                )));
            }
        }
        for (k, col) in self.dc_temps.iter().enumerate() {
            if col.len() != t {
                return Err(ForecastError::InconsistentTrace(format!(
                    "dc_temps[{k}] has {} samples, expected {t}",
                    col.len()
                )));
            }
        }
        for (name, col) in [
            ("setpoint", &self.setpoint),
            ("acu_energy", &self.acu_energy),
            ("acu_power", &self.acu_power),
        ] {
            if col.len() != t {
                return Err(ForecastError::InconsistentTrace(format!(
                    "{name} has {} samples, expected {t}",
                    col.len()
                )));
            }
        }
        Ok(())
    }

    /// Drops the oldest `n` samples from every column — the retention
    /// hook long-running episodes use to keep a rolling window instead
    /// of unbounded history. Dropping more than the length clears the
    /// trace.
    pub fn drop_front(&mut self, n: usize) {
        let n = n.min(self.len());
        if n == 0 {
            return;
        }
        self.avg_power.drain(..n);
        for col in &mut self.acu_inlet {
            col.drain(..n.min(col.len()));
        }
        for col in &mut self.dc_temps {
            col.drain(..n.min(col.len()));
        }
        self.setpoint.drain(..n.min(self.setpoint.len()));
        self.acu_energy.drain(..n.min(self.acu_energy.len()));
        self.acu_power.drain(..n.min(self.acu_power.len()));
    }

    /// Extracts the model input window ending at (and including) time
    /// index `t`: the past `l` samples of each signal.
    pub fn window_at(&self, t: usize, l: usize) -> Result<ModelWindow, ForecastError> {
        if t + 1 < l || t >= self.len() {
            return Err(ForecastError::BadWindow(format!(
                "window of length {l} ending at index {t} out of range (trace len {})",
                self.len()
            )));
        }
        let lo = t + 1 - l;
        Ok(ModelWindow {
            power: self.avg_power[lo..=t].to_vec(),
            inlet: self.acu_inlet.iter().map(|c| c[lo..=t].to_vec()).collect(),
            dc: self.dc_temps.iter().map(|c| c[lo..=t].to_vec()).collect(),
        })
    }
}

/// The past-`L`-samples input of the DC time-series model (Fig. 6's left
/// edge): average server power, ACU inlet temps, and rack temps for the
/// interval `t−L+1 ..= t`, each oldest-first.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWindow {
    /// Average server power lags, oldest first (`L` values).
    pub power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk lag-feature column
    /// ACU inlet lags per sensor: `[N_a][L]`, oldest first.
    pub inlet: Vec<Vec<f64>>,
    /// Rack sensor lags per sensor: `[N_d][L]`, oldest first.
    pub dc: Vec<Vec<f64>>,
}

impl ModelWindow {
    /// Horizon/lag length `L` of the window.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Checks the window matches the expected shape.
    pub fn check_shape(&self, l: usize, n_acu: usize, n_dc: usize) -> Result<(), ForecastError> {
        if self.power.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "power lags: {} != L={l}",
                self.power.len()
            )));
        }
        if self.inlet.len() != n_acu || self.inlet.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("inlet lag shape mismatch".into()));
        }
        if self.dc.len() != n_dc || self.dc.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("dc lag shape mismatch".into()));
        }
        Ok(())
    }
}

/// Builds the model input window directly from a [`MetricStore`] — the
/// paper's deployment shape, where the producer pulls lag windows from
/// InfluxDB rather than carrying an in-process trace. One aligned
/// `last_n_many` fetch covers power, inlet, and rack series; every
/// series must hold at least `l` samples or the window is rejected.
pub fn window_from_store(
    store: &dyn MetricStore,
    power_metric: &str,
    inlet_metrics: &[String],
    dc_metrics: &[String],
    l: usize,
) -> Result<ModelWindow, ForecastError> {
    let mut names: Vec<&str> = Vec::with_capacity(1 + inlet_metrics.len() + dc_metrics.len());
    names.push(power_metric);
    names.extend(inlet_metrics.iter().map(String::as_str));
    names.extend(dc_metrics.iter().map(String::as_str));
    let mut columns = store.last_n_many(&names, l);
    for (name, col) in names.iter().zip(&columns) {
        if col.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "store series {name} holds {} samples, window needs {l}",
                col.len()
            )));
        }
    }
    let dc = columns.split_off(1 + inlet_metrics.len());
    let inlet = columns.split_off(1);
    let power = columns.pop().unwrap_or_default();
    Ok(ModelWindow { power, inlet, dc })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(t: usize) -> Trace {
        let mut tr = Trace::with_sensors(2, 3);
        for i in 0..t {
            let f = i as f64;
            tr.push(
                f,
                &[10.0 + f, 20.0 + f],
                &[1.0 + f, 2.0 + f, 3.0 + f],
                23.0,
                0.04,
                2.0,
            );
        }
        tr
    }

    #[test]
    fn push_keeps_columns_aligned() {
        let tr = trace(5);
        assert_eq!(tr.len(), 5);
        tr.validate(5).unwrap();
        assert_eq!(tr.acu_inlet[1][4], 24.0);
        assert_eq!(tr.dc_temps[2][0], 3.0);
    }

    #[test]
    fn validate_rejects_short_trace() {
        let tr = trace(3);
        assert!(matches!(
            tr.validate(10),
            Err(ForecastError::TraceTooShort { needed: 10, got: 3 })
        ));
    }

    #[test]
    fn validate_rejects_ragged_columns() {
        let mut tr = trace(3);
        tr.setpoint.pop();
        assert!(matches!(
            tr.validate(2),
            Err(ForecastError::InconsistentTrace(_))
        ));
    }

    #[test]
    fn window_at_extracts_correct_slice() {
        let tr = trace(10);
        let w = tr.window_at(9, 4).unwrap();
        assert_eq!(w.power, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(w.inlet[0], vec![16.0, 17.0, 18.0, 19.0]);
        assert_eq!(w.dc[2], vec![9.0, 10.0, 11.0, 12.0]);
        w.check_shape(4, 2, 3).unwrap();
    }

    #[test]
    fn window_at_rejects_out_of_range() {
        let tr = trace(10);
        assert!(tr.window_at(2, 4).is_err()); // not enough history
        assert!(tr.window_at(10, 4).is_err()); // past the end
    }

    #[test]
    fn check_shape_catches_mismatches() {
        let tr = trace(10);
        let w = tr.window_at(9, 4).unwrap();
        assert!(w.check_shape(5, 2, 3).is_err());
        assert!(w.check_shape(4, 1, 3).is_err());
        assert!(w.check_shape(4, 2, 2).is_err());
    }

    #[test]
    fn drop_front_keeps_alignment_and_bounds_length() {
        let mut tr = trace(10);
        tr.drop_front(4);
        assert_eq!(tr.len(), 6);
        tr.validate(6).unwrap();
        // Columns shifted together: old index 4 is the new index 0.
        assert_eq!(tr.avg_power[0], 4.0);
        assert_eq!(tr.acu_inlet[0][0], 14.0);
        assert_eq!(tr.dc_temps[2][0], 7.0);
        // Windows relative to the end are unchanged by the drop.
        let w = tr.window_at(tr.len() - 1, 3).unwrap();
        assert_eq!(w.power, vec![7.0, 8.0, 9.0]);
        // Over-dropping clears, never panics.
        tr.drop_front(100);
        assert_eq!(tr.len(), 0);
        tr.drop_front(1);
        assert!(tr.is_empty());
    }

    #[test]
    fn window_from_store_matches_window_at() {
        use tesla_historian::{Historian, HistorianConfig};
        let tr = trace(10);
        let h = Historian::in_memory(HistorianConfig {
            block_len: 4, // exercise sealed blocks inside the window
            ..HistorianConfig::default()
        });
        let inlets = vec!["inlet.0".to_string(), "inlet.1".to_string()];
        let dcs = vec!["dc.0".to_string(), "dc.1".to_string(), "dc.2".to_string()];
        for i in 0..tr.len() {
            let t = i as f64 * 60.0;
            h.insert("power", t, tr.avg_power[i]);
            for (k, name) in inlets.iter().enumerate() {
                h.insert(name, t, tr.acu_inlet[k][i]);
            }
            for (k, name) in dcs.iter().enumerate() {
                h.insert(name, t, tr.dc_temps[k][i]);
            }
        }
        let want = tr.window_at(9, 4).unwrap();
        let got = window_from_store(&h, "power", &inlets, &dcs, 4).unwrap();
        assert_eq!(got, want);
        got.check_shape(4, 2, 3).unwrap();
        // A short series rejects the window instead of padding it.
        assert!(window_from_store(&h, "power", &inlets, &dcs, 11).is_err());
        assert!(window_from_store(&h, "missing", &inlets, &dcs, 4).is_err());
    }
}
