//! Trace and window containers shared by all sub-modules.

use crate::ForecastError;

/// A contiguous, per-minute telemetry trace used for training and
/// evaluation. Columns are stored signal-major (`[sensor][time]`) because
/// the forecaster consumes whole signals when building lag features.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Average per-server power `p_t`, kW.
    pub avg_power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// ACU inlet temperatures `a^i_t`, °C: `[N_a][T]`.
    pub acu_inlet: Vec<Vec<f64>>,
    /// Rack sensor temperatures `d^k_t`, °C: `[N_d][T]`.
    pub dc_temps: Vec<Vec<f64>>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// Executed set-point `s_t`, °C.
    pub setpoint: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// ACU energy consumed during each sampling period, kWh.
    pub acu_energy: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
    /// ACU instantaneous power, kW (diagnostics and Fig. 2).
    pub acu_power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry column
}

impl Trace {
    /// Creates an empty trace with the given sensor counts.
    pub fn with_sensors(n_acu: usize, n_dc: usize) -> Self {
        Trace {
            avg_power: Vec::new(),
            acu_inlet: vec![Vec::new(); n_acu],
            dc_temps: vec![Vec::new(); n_dc],
            setpoint: Vec::new(),
            acu_energy: Vec::new(),
            acu_power: Vec::new(),
        }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.avg_power.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.avg_power.is_empty()
    }

    /// Number of ACU inlet sensors.
    pub fn n_acu_sensors(&self) -> usize {
        self.acu_inlet.len()
    }

    /// Number of rack sensors.
    pub fn n_dc_sensors(&self) -> usize {
        self.dc_temps.len()
    }

    /// Appends one sample across all columns.
    // lint:allow(no-raw-f64-in-public-api): raw telemetry ingestion boundary
    pub fn push(
        &mut self,
        avg_power: f64,
        acu_inlet: &[f64],
        dc_temps: &[f64],
        setpoint: f64,
        acu_energy: f64,
        acu_power: f64,
    ) {
        debug_assert_eq!(acu_inlet.len(), self.acu_inlet.len());
        debug_assert_eq!(dc_temps.len(), self.dc_temps.len());
        self.avg_power.push(avg_power);
        for (col, v) in self.acu_inlet.iter_mut().zip(acu_inlet) {
            col.push(*v);
        }
        for (col, v) in self.dc_temps.iter_mut().zip(dc_temps) {
            col.push(*v);
        }
        self.setpoint.push(setpoint);
        self.acu_energy.push(acu_energy);
        self.acu_power.push(acu_power);
    }

    /// Validates column-length consistency and a minimum length.
    pub fn validate(&self, min_len: usize) -> Result<(), ForecastError> {
        let t = self.len();
        if t < min_len {
            return Err(ForecastError::TraceTooShort {
                needed: min_len,
                got: t,
            });
        }
        for (i, col) in self.acu_inlet.iter().enumerate() {
            if col.len() != t {
                return Err(ForecastError::InconsistentTrace(format!(
                    "acu_inlet[{i}] has {} samples, expected {t}",
                    col.len()
                )));
            }
        }
        for (k, col) in self.dc_temps.iter().enumerate() {
            if col.len() != t {
                return Err(ForecastError::InconsistentTrace(format!(
                    "dc_temps[{k}] has {} samples, expected {t}",
                    col.len()
                )));
            }
        }
        for (name, col) in [
            ("setpoint", &self.setpoint),
            ("acu_energy", &self.acu_energy),
            ("acu_power", &self.acu_power),
        ] {
            if col.len() != t {
                return Err(ForecastError::InconsistentTrace(format!(
                    "{name} has {} samples, expected {t}",
                    col.len()
                )));
            }
        }
        Ok(())
    }

    /// Extracts the model input window ending at (and including) time
    /// index `t`: the past `l` samples of each signal.
    pub fn window_at(&self, t: usize, l: usize) -> Result<ModelWindow, ForecastError> {
        if t + 1 < l || t >= self.len() {
            return Err(ForecastError::BadWindow(format!(
                "window of length {l} ending at index {t} out of range (trace len {})",
                self.len()
            )));
        }
        let lo = t + 1 - l;
        Ok(ModelWindow {
            power: self.avg_power[lo..=t].to_vec(),
            inlet: self.acu_inlet.iter().map(|c| c[lo..=t].to_vec()).collect(),
            dc: self.dc_temps.iter().map(|c| c[lo..=t].to_vec()).collect(),
        })
    }
}

/// The past-`L`-samples input of the DC time-series model (Fig. 6's left
/// edge): average server power, ACU inlet temps, and rack temps for the
/// interval `t−L+1 ..= t`, each oldest-first.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWindow {
    /// Average server power lags, oldest first (`L` values).
    pub power: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk lag-feature column
    /// ACU inlet lags per sensor: `[N_a][L]`, oldest first.
    pub inlet: Vec<Vec<f64>>,
    /// Rack sensor lags per sensor: `[N_d][L]`, oldest first.
    pub dc: Vec<Vec<f64>>,
}

impl ModelWindow {
    /// Horizon/lag length `L` of the window.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Checks the window matches the expected shape.
    pub fn check_shape(&self, l: usize, n_acu: usize, n_dc: usize) -> Result<(), ForecastError> {
        if self.power.len() != l {
            return Err(ForecastError::BadWindow(format!(
                "power lags: {} != L={l}",
                self.power.len()
            )));
        }
        if self.inlet.len() != n_acu || self.inlet.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("inlet lag shape mismatch".into()));
        }
        if self.dc.len() != n_dc || self.dc.iter().any(|c| c.len() != l) {
            return Err(ForecastError::BadWindow("dc lag shape mismatch".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(t: usize) -> Trace {
        let mut tr = Trace::with_sensors(2, 3);
        for i in 0..t {
            let f = i as f64;
            tr.push(
                f,
                &[10.0 + f, 20.0 + f],
                &[1.0 + f, 2.0 + f, 3.0 + f],
                23.0,
                0.04,
                2.0,
            );
        }
        tr
    }

    #[test]
    fn push_keeps_columns_aligned() {
        let tr = trace(5);
        assert_eq!(tr.len(), 5);
        tr.validate(5).unwrap();
        assert_eq!(tr.acu_inlet[1][4], 24.0);
        assert_eq!(tr.dc_temps[2][0], 3.0);
    }

    #[test]
    fn validate_rejects_short_trace() {
        let tr = trace(3);
        assert!(matches!(
            tr.validate(10),
            Err(ForecastError::TraceTooShort { needed: 10, got: 3 })
        ));
    }

    #[test]
    fn validate_rejects_ragged_columns() {
        let mut tr = trace(3);
        tr.setpoint.pop();
        assert!(matches!(
            tr.validate(2),
            Err(ForecastError::InconsistentTrace(_))
        ));
    }

    #[test]
    fn window_at_extracts_correct_slice() {
        let tr = trace(10);
        let w = tr.window_at(9, 4).unwrap();
        assert_eq!(w.power, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(w.inlet[0], vec![16.0, 17.0, 18.0, 19.0]);
        assert_eq!(w.dc[2], vec![9.0, 10.0, 11.0, 12.0]);
        w.check_shape(4, 2, 3).unwrap();
    }

    #[test]
    fn window_at_rejects_out_of_range() {
        let tr = trace(10);
        assert!(tr.window_at(2, 4).is_err()); // not enough history
        assert!(tr.window_at(10, 4).is_err()); // past the end
    }

    #[test]
    fn check_shape_catches_mismatches() {
        let tr = trace(10);
        let w = tr.window_at(9, 4).unwrap();
        assert!(w.check_shape(5, 2, 3).is_err());
        assert!(w.check_shape(4, 1, 3).is_err());
        assert!(w.check_shape(4, 2, 2).is_err());
    }
}
