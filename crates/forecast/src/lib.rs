//! TESLA's DC time-series model (§3.2) and its modeling baselines.
//!
//! The model predicts, over a finite `L`-step horizon and for a candidate
//! set-point, (a) how every DC temperature sensor evolves and (b) how much
//! cooling energy the ACU spends. It is composed of four linear
//! sub-modules wired per Fig. 6 of the paper:
//!
//! 1. [`asp::AspModel`] — average server power (Eq. 1): pure
//!    autoregression on the cluster-average power.
//! 2. [`acu::AcuModel`] — ACU inlet temperature per internal sensor
//!    (Eq. 2): set-point + predicted power + inlet lags.
//! 3. [`dcs::DcsModel`] — rack sensor temperatures (Eq. 3): predicted
//!    power + predicted inlet temps + rack-sensor lags.
//! 4. [`energy::EnergyModel`] — cooling energy over the horizon (Eq. 4):
//!    future set-points + future inlet temperatures.
//!
//! Every sub-module uses the *direct strategy*: an independent ridge
//! regression per (output, horizon-step) pair, solved analytically —
//! `(1 + N_a + N_d) · L` regressions in total, trained in parallel with
//! rayon. Sub-modules that consume predicted inputs at inference time
//! (ACU, DCS, energy) use `α = 1` ridge; ASP uses OLS (Table 2).
//!
//! [`recursive::RecursiveAr`] implements the Lazic et al. \[20\] baseline:
//! a single autoregressive OLS model over all signals, rolled out
//! recursively — the Table 3 comparison point.
//!
//! # Example: fit and predict on a synthetic trace
//!
//! ```
//! use tesla_forecast::{DcTimeSeriesModel, ModelConfig, Trace};
//! use tesla_units::Celsius;
//!
//! // Toy plant: temperatures track the set-point, energy falls as it rises.
//! let mut trace = Trace::with_sensors(1, 2);
//! for t in 0..60 {
//!     let sp = 22.0 + (t % 8) as f64 * 0.5;
//!     trace.push(1.5, &[sp + 1.0], &[sp + 0.5, sp - 0.5], sp, 30.0 - sp * 0.5, 2.0);
//! }
//! let cfg = ModelConfig { horizon: 4, ..Default::default() };
//! let model = DcTimeSeriesModel::fit(&trace, cfg)?;
//! let window = trace.window_at(trace.len() - 5, 4)?;
//! let prediction = model.predict(&window, Celsius::new(24.0))?;
//! assert!(prediction.energy.value().is_finite());
//! # Ok::<(), tesla_forecast::ForecastError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acu;
pub mod asp;
pub mod dcs;
pub mod design;
pub mod energy;
pub mod io;
pub mod model;
pub mod recursive;
pub mod trace;

pub use model::{DcTimeSeriesModel, ModelConfig, Prediction, PreparedDecision};
pub use recursive::RecursiveAr;
pub use trace::{window_from_store, ModelWindow, Trace};

/// Errors produced while building datasets or fitting models.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The trace is too short for the requested horizon.
    TraceTooShort {
        /// Minimum number of samples the fit or window requires.
        needed: usize,
        /// Samples actually available in the trace.
        got: usize,
    },
    /// Trace columns disagree on length or sensor count.
    InconsistentTrace(String),
    /// The underlying linear solve failed.
    Solve(String),
    /// A prediction window has the wrong shape.
    BadWindow(String),
}

impl std::fmt::Display for ForecastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForecastError::TraceTooShort { needed, got } => {
                write!(
                    f,
                    "trace too short: need at least {needed} samples, got {got}"
                )
            }
            ForecastError::InconsistentTrace(msg) => write!(f, "inconsistent trace: {msg}"),
            ForecastError::Solve(msg) => write!(f, "linear solve failed: {msg}"),
            ForecastError::BadWindow(msg) => write!(f, "bad prediction window: {msg}"),
        }
    }
}

impl std::error::Error for ForecastError {}

impl From<tesla_linalg::LinalgError> for ForecastError {
    fn from(e: tesla_linalg::LinalgError) -> Self {
        ForecastError::Solve(e.to_string())
    }
}
