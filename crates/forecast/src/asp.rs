//! Average server power (ASP) sub-module — Eq. 1 of the paper.
//!
//! `p̂_{t+l} = β_0 + Σ_{j=0}^{L-1} β_{l,j} · p_{t-j}` for each horizon
//! step `l ∈ {1..L}`: a direct-strategy autoregression on the
//! cluster-average server power. Per §3.2 it predicts the *average* over
//! servers because individual machines change power abruptly while the
//! aggregate is smooth; per Table 2 it uses OLS (`α_β = 0`) since its
//! inputs are always true observations.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::design::SharedDesign;
use crate::trace::Trace;
use crate::ForecastError;
use tesla_linalg::{Matrix, Ridge};

/// Fitted ASP sub-module: one regression per horizon step.
#[derive(Debug, Clone)]
pub struct AspModel {
    models: Vec<Ridge>,
    horizon: usize,
}

impl AspModel {
    /// Fits on a trace with horizon/lag length `l` and regularization
    /// `alpha` (0 in the paper).
    pub fn fit(trace: &Trace, l: usize, alpha: f64) -> Result<Self, ForecastError> {
        trace.validate(2 * l + 1)?;
        let t_len = trace.len();
        let rows: Vec<usize> = (l - 1..t_len - l).collect();
        let n = rows.len();

        let mut lag = Matrix::zeros(n, l);
        for (r, &t) in rows.iter().enumerate() {
            let row = lag.row_mut(r);
            row.copy_from_slice(&trace.avg_power[t + 1 - l..=t]);
        }
        let design = SharedDesign::new(lag);

        let targets: Vec<Vec<f64>> = (1..=l)
            .map(|step| rows.iter().map(|&t| trace.avg_power[t + step]).collect())
            .collect();
        let models = design.fit_multi(None, &targets, alpha)?;
        Ok(AspModel { models, horizon: l })
    }

    /// Horizon length `L`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Predicts the next `L` average-power values from the last `L`
    /// observations (oldest first).
    pub fn predict(&self, power_lags: &[f64]) -> Result<Vec<f64>, ForecastError> // lint:allow(no-raw-f64-in-public-api): bulk prediction series
    {
        if power_lags.len() != self.horizon {
            return Err(ForecastError::BadWindow(format!(
                "ASP expects {} power lags, got {}",
                self.horizon,
                power_lags.len()
            )));
        }
        Ok(self.models.iter().map(|m| m.predict(power_lags)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace whose power follows a deterministic AR(1):
    /// `p_{t+1} = 0.9 p_t + 0.5`.
    fn ar1_trace(t: usize) -> Trace {
        let mut tr = Trace::with_sensors(1, 1);
        let mut p = 4.0;
        for _ in 0..t {
            tr.push(p, &[22.0], &[20.0], 23.0, 0.03, 2.0);
            p = 0.9 * p + 0.5;
        }
        tr
    }

    #[test]
    fn learns_deterministic_ar1_exactly() {
        let tr = ar1_trace(200);
        let model = AspModel::fit(&tr, 5, 0.0).unwrap();
        let t = 100;
        let lags: Vec<f64> = tr.avg_power[t - 4..=t].to_vec();
        let preds = model.predict(&lags).unwrap();
        for (step, p) in preds.iter().enumerate() {
            let truth = tr.avg_power[t + 1 + step];
            assert!((p - truth).abs() < 1e-6, "step {step}: {p} vs {truth}");
        }
    }

    #[test]
    fn horizon_steps_use_distinct_models() {
        // §3.2: "the temperature at different steps within the L-step
        // horizon uses different regression weights and biases" — same for
        // power. A decaying AR(1) forces different per-step weights.
        let tr = ar1_trace(200);
        let model = AspModel::fit(&tr, 4, 0.0).unwrap();
        let lags = [3.0, 3.1, 3.2, 3.3];
        let preds = model.predict(&lags).unwrap();
        // Successive predictions follow the AR recursion, so they differ.
        assert!((preds[0] - preds[1]).abs() > 1e-9);
        assert!((preds[1] - preds[2]).abs() > 1e-9);
    }

    #[test]
    fn rejects_short_trace() {
        let tr = ar1_trace(8);
        assert!(matches!(
            AspModel::fit(&tr, 5, 0.0),
            Err(ForecastError::TraceTooShort { .. })
        ));
    }

    #[test]
    fn rejects_wrong_lag_count() {
        let tr = ar1_trace(100);
        let model = AspModel::fit(&tr, 5, 0.0).unwrap();
        assert!(model.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn constant_power_predicts_constant() {
        let mut tr = Trace::with_sensors(1, 1);
        for _ in 0..100 {
            tr.push(3.3, &[22.0], &[20.0], 23.0, 0.03, 2.0);
        }
        let model = AspModel::fit(&tr, 6, 1.0).unwrap();
        let preds = model.predict(&[3.3; 6]).unwrap();
        for p in preds {
            assert!((p - 3.3).abs() < 1e-6);
        }
    }
}
