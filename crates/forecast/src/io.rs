//! Trace persistence: CSV save/load.
//!
//! The paper's training protocol collects a month of telemetry; nobody
//! wants to regenerate that per run. Traces round-trip through a plain
//! CSV with a stable header, so they can also be plotted or inspected
//! with standard tooling (the paper's deployment keeps the same data in
//! InfluxDB).

use crate::trace::Trace;
use crate::ForecastError;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Column layout: `avg_power, setpoint, acu_energy, acu_power,
/// inlet_0..inlet_{Na-1}, dc_0..dc_{Nd-1}`.
fn header(n_acu: usize, n_dc: usize) -> String {
    let mut cols = vec![
        "avg_power".to_string(),
        "setpoint".to_string(),
        "acu_energy".to_string(),
        "acu_power".to_string(),
    ];
    for i in 0..n_acu {
        cols.push(format!("inlet_{i}"));
    }
    for k in 0..n_dc {
        cols.push(format!("dc_{k}"));
    }
    cols.join(",")
}

/// Writes a trace to CSV.
pub fn save_csv(trace: &Trace, path: impl AsRef<Path>) -> Result<(), ForecastError> {
    trace
        .validate(0)
        .map_err(|e| ForecastError::InconsistentTrace(e.to_string()))?;
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| ForecastError::InconsistentTrace(format!("create: {e}")))?;
    let mut w = BufWriter::new(file);
    let n_acu = trace.n_acu_sensors();
    let n_dc = trace.n_dc_sensors();
    let io_err = |e: std::io::Error| ForecastError::InconsistentTrace(format!("write: {e}"));
    writeln!(w, "{}", header(n_acu, n_dc)).map_err(io_err)?;
    for t in 0..trace.len() {
        let mut row = Vec::with_capacity(4 + n_acu + n_dc);
        row.push(trace.avg_power[t].to_string());
        row.push(trace.setpoint[t].to_string());
        row.push(trace.acu_energy[t].to_string());
        row.push(trace.acu_power[t].to_string());
        for col in &trace.acu_inlet {
            row.push(col[t].to_string());
        }
        for col in &trace.dc_temps {
            row.push(col[t].to_string());
        }
        writeln!(w, "{}", row.join(",")).map_err(io_err)?;
    }
    w.flush().map_err(io_err)?;
    Ok(())
}

/// Reads a trace from CSV (the format written by [`save_csv`]).
pub fn load_csv(path: impl AsRef<Path>) -> Result<Trace, ForecastError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| ForecastError::InconsistentTrace(format!("open: {e}")))?;
    let mut lines = BufReader::new(file).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| ForecastError::InconsistentTrace("empty file".into()))?
        .map_err(|e| ForecastError::InconsistentTrace(format!("read: {e}")))?;
    let cols: Vec<&str> = header_line.split(',').collect();
    let n_acu = cols.iter().filter(|c| c.starts_with("inlet_")).count();
    let n_dc = cols.iter().filter(|c| c.starts_with("dc_")).count();
    if cols.len() != 4 + n_acu + n_dc || !header_line.starts_with("avg_power,") {
        return Err(ForecastError::InconsistentTrace(format!(
            "unrecognized header: {header_line}"
        )));
    }

    let mut trace = Trace::with_sensors(n_acu, n_dc);
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| ForecastError::InconsistentTrace(format!("read: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 + n_acu + n_dc {
            return Err(ForecastError::InconsistentTrace(format!(
                "row {} has {} fields, expected {}",
                lineno + 2,
                fields.len(),
                4 + n_acu + n_dc
            )));
        }
        let parse = |s: &str| -> Result<f64, ForecastError> {
            s.parse().map_err(|_| {
                ForecastError::InconsistentTrace(format!("row {}: bad number {s:?}", lineno + 2))
            })
        };
        let avg_power = parse(fields[0])?;
        let setpoint = parse(fields[1])?;
        let acu_energy = parse(fields[2])?;
        let acu_power = parse(fields[3])?;
        let mut inlet = Vec::with_capacity(n_acu);
        for f in &fields[4..4 + n_acu] {
            inlet.push(parse(f)?);
        }
        let mut dc = Vec::with_capacity(n_dc);
        for f in &fields[4 + n_acu..] {
            dc.push(parse(f)?);
        }
        trace.push(avg_power, &inlet, &dc, setpoint, acu_energy, acu_power);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut tr = Trace::with_sensors(2, 3);
        for i in 0..25 {
            let f = i as f64;
            tr.push(
                0.2 + f * 0.01,
                &[23.0 + f * 0.1, 23.2 + f * 0.1],
                &[19.0, 19.5 + f * 0.05, 20.0],
                22.0 + (i % 5) as f64 * 0.5,
                0.035,
                2.1,
            );
        }
        tr
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tesla_trace_io_{name}_{}.csv", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tr = sample_trace();
        let path = tmp_path("roundtrip");
        save_csv(&tr, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back.len(), tr.len());
        assert_eq!(back.n_acu_sensors(), 2);
        assert_eq!(back.n_dc_sensors(), 3);
        assert_eq!(back.avg_power, tr.avg_power);
        assert_eq!(back.setpoint, tr.setpoint);
        assert_eq!(back.acu_inlet, tr.acu_inlet);
        assert_eq!(back.dc_temps, tr.dc_temps);
        assert_eq!(back.acu_energy, tr.acu_energy);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_csv("/definitely/not/a/real/path.csv").is_err());
    }

    #[test]
    fn garbage_header_rejected() {
        let path = tmp_path("badheader");
        std::fs::write(&path, "nope,nope\n1,2\n").unwrap();
        assert!(load_csv(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ragged_row_rejected() {
        let tr = sample_trace();
        let path = tmp_path("ragged");
        save_csv(&tr, &path).unwrap();
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("1,2,3\n");
        std::fs::write(&path, content).unwrap();
        assert!(load_csv(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn non_numeric_cell_rejected() {
        let tr = sample_trace();
        let path = tmp_path("nonnum");
        save_csv(&tr, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let corrupted = content.replacen("0.035", "banana", 1);
        std::fs::write(&path, corrupted).unwrap();
        assert!(load_csv(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loaded_trace_trains_a_model() {
        // End-to-end: persisted data is good enough to fit on.
        let mut tr = Trace::with_sensors(1, 1);
        let mut p = 3.0;
        for i in 0..120 {
            tr.push(p, &[23.0], &[20.0], 22.0 + (i % 4) as f64 * 0.5, 0.03, 2.0);
            p = 0.9 * p + 0.4;
        }
        let path = tmp_path("train");
        save_csv(&tr, &path).unwrap();
        let back = load_csv(&path).unwrap();
        let model = crate::asp::AspModel::fit(&back, 5, 0.0).unwrap();
        let pred = model.predict(&back.avg_power[50..55]).unwrap();
        assert_eq!(pred.len(), 5);
        let _ = std::fs::remove_file(path);
    }
}
