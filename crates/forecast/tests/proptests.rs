//! Property-based tests on the forecasting stack.

use proptest::prelude::*;
use tesla_forecast::asp::AspModel;
use tesla_forecast::energy::EnergyModel;
use tesla_forecast::{DcTimeSeriesModel, ModelConfig, Trace};
use tesla_units::Celsius;

/// Builds a plausible, internally consistent trace from sampled knobs.
fn synth_trace(len: usize, sp_amp: f64, p_base: f64, seed: u64) -> Trace {
    let mut tr = Trace::with_sensors(2, 3);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut rand = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as f64 / (1u64 << 31) as f64 - 0.5
    };
    let mut a = [24.0, 24.1];
    let mut d = [19.0, 19.5, 20.0];
    let mut p = p_base;
    for i in 0..len {
        let sp = 23.0 + sp_amp * ((i / 7) % 10) as f64 / 10.0;
        p = (p + 0.1 * rand()).clamp(2.0, 9.0);
        for (j, aj) in a.iter_mut().enumerate() {
            *aj += 0.3 * (0.6 * sp + 1.2 * p + j as f64 * 0.1 - *aj) + 0.02 * rand();
        }
        let abar = (a[0] + a[1]) / 2.0;
        for (k, dk) in d.iter_mut().enumerate() {
            *dk += 0.3 * (abar - 4.0 + k as f64 * 0.4 - *dk) + 0.02 * rand();
        }
        let e = (0.02 + 0.01 * (abar - sp)).max(0.003);
        tr.push(p, &a, &d, sp, e, e * 60.0);
    }
    tr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Model fitting + prediction never produces non-finite values on
    /// plausible traces, for any horizon.
    #[test]
    fn predictions_are_finite(
        l in 3usize..9,
        sp_amp in 0.5f64..6.0,
        p_base in 2.5f64..7.0,
        seed in 0u64..1000,
    ) {
        let tr = synth_trace(260, sp_amp, p_base, seed);
        let cfg = ModelConfig { horizon: l, ..ModelConfig::default() };
        let model = DcTimeSeriesModel::fit(&tr, cfg).unwrap();
        let window = tr.window_at(200, l).unwrap();
        for sp in [20.0, 24.0, 30.0, 35.0] {
            let pred = model.predict(&window, Celsius::new(sp)).unwrap();
            prop_assert!(pred.energy.value().is_finite());
            for series in pred.dc.iter().chain(pred.inlet.iter()) {
                for v in series {
                    prop_assert!(v.is_finite());
                }
            }
            for v in &pred.power {
                prop_assert!(v.is_finite());
            }
        }
    }

    /// The ASP sub-module on constant power predicts (approximately) that
    /// constant, for any constant.
    #[test]
    fn asp_constant_fixpoint(c in 0.5f64..8.0, l in 2usize..10) {
        let mut tr = Trace::with_sensors(1, 1);
        for _ in 0..(4 * l + 20) {
            tr.push(c, &[23.0], &[20.0], 23.0, 0.03, 2.0);
        }
        let model = AspModel::fit(&tr, l, 1.0).unwrap();
        let preds = model.predict(&vec![c; l]).unwrap();
        for p in preds {
            prop_assert!((p - c).abs() < 0.05 * c.max(1.0), "pred {p} vs const {c}");
        }
    }

    /// Energy predictions respect the training floor (the fan-power
    /// clamp) no matter how extreme the query.
    #[test]
    fn energy_never_below_floor(
        seed in 0u64..500,
        sp in 10.0f64..45.0,
        inlet in 10.0f64..40.0,
    ) {
        let tr = synth_trace(200, 4.0, 4.0, seed);
        let l = 5;
        let model = EnergyModel::fit(&tr, l, 1.0).unwrap();
        let pred = model
            .predict(&vec![Celsius::new(sp); l], &[vec![inlet; l], vec![inlet; l]])
            .unwrap();
        prop_assert!(pred.value() >= model.floor_kwh().value() - 1e-12);
        prop_assert!(pred.value().is_finite());
    }

    /// Windows extracted from a trace always round-trip their shape.
    #[test]
    fn window_shape_invariant(l in 2usize..12, at in 0usize..180) {
        let tr = synth_trace(200, 2.0, 4.0, 9);
        let t = (l - 1) + at.min(200 - l - 1);
        if let Ok(w) = tr.window_at(t, l) {
            prop_assert_eq!(w.len(), l);
            prop_assert!(w.check_shape(l, 2, 3).is_ok());
        }
    }
}
