//! Random forest regressor \[26\]: bootstrap-bagged CART trees with
//! per-split feature subsampling, trained in parallel with rayon.

use crate::tree::{RegressionTree, TreeConfig};
use crate::{Dataset, MlError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration. If `max_features` is `None`, it defaults
    /// to `ceil(sqrt(d))` as usual for regression forests in practice.
    pub tree: TreeConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 10,
                ..TreeConfig::default()
            },
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Trains `config.n_trees` trees on bootstrap resamples, in parallel.
    pub fn fit(data: &Dataset, config: ForestConfig) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::Empty("forest training data"));
        }
        if config.n_trees == 0 {
            return Err(MlError::BadConfig("n_trees must be > 0".into()));
        }
        let d = data.n_features();
        let mut tree_cfg = config.tree.clone();
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some(((d as f64).sqrt().ceil() as usize).clamp(1, d.max(1)));
        }
        let n = data.len();

        let trees: Result<Vec<RegressionTree>, MlError> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| {
                // Independent, deterministic stream per tree.
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                // Bootstrap resample.
                let mut x = Vec::with_capacity(n);
                let mut y = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = rng.random_range(0..n);
                    x.push(data.x[i].clone());
                    y.push(data.y[i]);
                }
                let sample = Dataset { x, y };
                RegressionTree::fit_with_rng(&sample, &tree_cfg, &mut rng)
            })
            .collect();
        Ok(RandomForest { trees: trees? })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predicts one row (ensemble mean).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedmanish_data() -> Dataset {
        // y = 2 x0 + x1² with two noise features.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut s = 12345u64;
        let mut rand = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..300 {
            let r = vec![rand(), rand(), rand(), rand()];
            y.push(2.0 * r[0] + r[1] * r[1]);
            x.push(r);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn fits_nonlinear_signal() {
        let data = friedmanish_data();
        let model = RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 60,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        let mut err = 0.0;
        for (xi, yi) in data.x.iter().zip(&data.y) {
            err += (model.predict(xi) - yi).abs();
        }
        err /= data.len() as f64;
        assert!(err < 0.25, "mean abs error {err}");
    }

    #[test]
    fn ensemble_beats_single_tree_off_sample() {
        // Train on even rows, evaluate on odd: bagging should not lose
        // badly, and usually wins on noisy data.
        let data = friedmanish_data();
        let train = Dataset {
            x: data.x.iter().step_by(2).cloned().collect(),
            y: data.y.iter().step_by(2).copied().collect(),
        };
        let forest = RandomForest::fit(
            &train,
            ForestConfig {
                n_trees: 80,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(forest.n_trees(), 80);
        let mut err = 0.0;
        let mut cnt = 0;
        for (xi, yi) in data.x.iter().zip(&data.y).skip(1).step_by(2) {
            err += (forest.predict(xi) - yi).abs();
            cnt += 1;
        }
        err /= cnt as f64;
        assert!(err < 0.35, "held-out mean abs error {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = friedmanish_data();
        let cfg = ForestConfig {
            n_trees: 10,
            seed: 3,
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&data, cfg.clone()).unwrap();
        let b = RandomForest::fit(&data, cfg).unwrap();
        assert_eq!(
            a.predict(&[0.5, 0.5, 0.5, 0.5]),
            b.predict(&[0.5, 0.5, 0.5, 0.5])
        );
    }

    #[test]
    fn bad_config_rejected() {
        let data = friedmanish_data();
        assert!(RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 0,
                ..ForestConfig::default()
            }
        )
        .is_err());
        assert!(RandomForest::fit(&Dataset::default(), ForestConfig::default()).is_err());
    }

    #[test]
    fn prediction_is_within_target_range() {
        let data = friedmanish_data();
        let model = RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 30,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        let lo = data.y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = model.predict(&[0.5, 0.5, 0.5, 0.5]);
        assert!(
            p >= lo && p <= hi,
            "forest mean must stay in the convex hull"
        );
    }
}
