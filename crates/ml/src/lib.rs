#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Baseline learners used in the paper's modeling comparisons.
//!
//! Table 3 benchmarks TESLA's temperature model against an MLP (Wang et
//! al. \[42\]); Table 4 benchmarks the cooling-energy sub-module against an
//! MLP, XGBoost \[7\], and a Random Forest \[26\]. The original implementations
//! are Python libraries unavailable to a pure-Rust reproduction, so this
//! crate implements the same model classes from scratch:
//!
//! * [`mlp::Mlp`] — multi-layer perceptron with ReLU hidden layers,
//!   multi-output linear head, Adam optimizer, mini-batch MSE training.
//! * [`tree::RegressionTree`] — CART regression tree (variance-reduction
//!   splits), the shared base learner.
//! * [`gbt::GradientBoosting`] — gradient-boosted trees with shrinkage
//!   and row subsampling (the XGBoost stand-in for squared loss).
//! * [`forest::RandomForest`] — bagged trees with feature subsampling,
//!   trained in parallel with rayon.
//!
//! All models share the [`Dataset`] container and operate on `f64`
//! features/targets.
//!
//! # Example: CART tree on a separable dataset
//!
//! ```
//! use tesla_ml::{Dataset, RegressionTree, TreeConfig};
//!
//! let data = Dataset::new(
//!     vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
//!     vec![0.0, 0.0, 5.0, 5.0],
//! )?;
//! let tree = RegressionTree::fit(&data, &TreeConfig::default())?;
//! assert_eq!(tree.predict(&[10.5]), 5.0);
//! # Ok::<(), tesla_ml::MlError>(())
//! ```

pub mod forest;
pub mod gbt;
pub mod mlp;
pub mod tree;

pub use forest::{ForestConfig, RandomForest};
pub use gbt::{GbtConfig, GradientBoosting};
pub use mlp::{Mlp, MlpConfig};
pub use tree::{RegressionTree, TreeConfig};

/// A supervised dataset: rows of features plus one target per row.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Targets, one per row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset, checking row/target alignment and rectangularity.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, MlError> {
        if x.len() != y.len() {
            return Err(MlError::Shape(format!(
                "{} feature rows vs {} targets",
                x.len(),
                y.len()
            )));
        }
        if let Some(first) = x.first() {
            let d = first.len();
            if x.iter().any(|r| r.len() != d) {
                return Err(MlError::Shape("ragged feature rows".into()));
            }
        }
        Ok(Dataset { x, y })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features (0 for an empty dataset).
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }
}

/// Errors from the learners.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Shape/validation failure.
    Shape(String),
    /// Training cannot proceed (e.g. empty dataset).
    Empty(&'static str),
    /// Invalid hyper-parameter.
    BadConfig(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::Shape(msg) => write!(f, "shape error: {msg}"),
            MlError::Empty(what) => write!(f, "empty input: {what}"),
            MlError::BadConfig(msg) => write!(f, "bad config: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_validation() {
        assert!(Dataset::new(vec![vec![1.0], vec![2.0]], vec![1.0]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![2.0, 3.0]], vec![1.0, 2.0]).is_err());
        let d = Dataset::new(vec![vec![1.0, 2.0]], vec![3.0]).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.n_features(), 2);
    }
}
