//! Gradient-boosted regression trees (the XGBoost \[7\] stand-in).
//!
//! Squared-loss boosting: each round fits a shallow tree to the current
//! residuals and adds it with shrinkage. Optional row subsampling
//! (stochastic gradient boosting) reduces variance like XGBoost's
//! `subsample` parameter.

use crate::tree::{RegressionTree, TreeConfig};
use crate::{Dataset, MlError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbtConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Row subsample fraction in (0, 1].
    pub subsample: f64,
    /// Base-tree configuration (depth is usually small, e.g. 3-4).
    pub tree: TreeConfig,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_rounds: 120,
            learning_rate: 0.08,
            subsample: 0.8,
            tree: TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            seed: 0,
        }
    }
}

/// A fitted gradient-boosting ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    base: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl GradientBoosting {
    /// Trains on the dataset.
    pub fn fit(data: &Dataset, config: GbtConfig) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::Empty("GBT training data"));
        }
        if !(0.0..=1.0).contains(&config.subsample) || config.subsample == 0.0 {
            return Err(MlError::BadConfig("subsample must be in (0, 1]".into()));
        }
        if config.learning_rate <= 0.0 {
            return Err(MlError::BadConfig("learning_rate must be positive".into()));
        }
        let n = data.len();
        let base = data.y.iter().sum::<f64>() / n as f64;
        let mut residual: Vec<f64> = data.y.iter().map(|y| y - base).collect();
        let mut trees = Vec::with_capacity(config.n_rounds);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let m = ((n as f64) * config.subsample).ceil() as usize;

        for _ in 0..config.n_rounds {
            // Subsample rows (without replacement).
            let rows: Vec<usize> = if m < n {
                let mut pool: Vec<usize> = (0..n).collect();
                for i in 0..m {
                    let j = rng.random_range(i..n);
                    pool.swap(i, j);
                }
                pool.truncate(m);
                pool
            } else {
                (0..n).collect()
            };
            let sub = Dataset {
                x: rows.iter().map(|&i| data.x[i].clone()).collect(),
                y: rows.iter().map(|&i| residual[i]).collect(),
            };
            let tree = RegressionTree::fit(&sub, &config.tree)?;
            // Update residuals on the FULL dataset.
            for (i, r) in residual.iter_mut().enumerate() {
                *r -= config.learning_rate * tree.predict(&data.x[i]);
            }
            trees.push(tree);
        }
        Ok(GradientBoosting {
            base,
            trees,
            learning_rate: config.learning_rate,
        })
    }

    /// Number of boosted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.learning_rate * t.predict(x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_data() -> Dataset {
        let x: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 119.0 * 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin() * 2.0 + 0.5 * r[0]).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn fits_a_smooth_curve() {
        let data = smooth_data();
        let model = GradientBoosting::fit(&data, GbtConfig::default()).unwrap();
        let mut err = 0.0;
        for (xi, yi) in data.x.iter().zip(&data.y) {
            err += (model.predict(xi) - yi).abs();
        }
        err /= data.len() as f64;
        assert!(err < 0.12, "mean abs error {err}");
    }

    #[test]
    fn more_rounds_fit_better() {
        let data = smooth_data();
        let short = GradientBoosting::fit(
            &data,
            GbtConfig {
                n_rounds: 5,
                subsample: 1.0,
                ..GbtConfig::default()
            },
        )
        .unwrap();
        let long = GradientBoosting::fit(
            &data,
            GbtConfig {
                n_rounds: 150,
                subsample: 1.0,
                ..GbtConfig::default()
            },
        )
        .unwrap();
        let sse = |m: &GradientBoosting| -> f64 {
            data.x
                .iter()
                .zip(&data.y)
                .map(|(x, y)| (m.predict(x) - y).powi(2))
                .sum()
        };
        assert!(sse(&long) < sse(&short));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let data = Dataset::new(x, vec![2.5; 30]).unwrap();
        let model = GradientBoosting::fit(&data, GbtConfig::default()).unwrap();
        assert!((model.predict(&[10.0]) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bad_config_rejected() {
        let data = smooth_data();
        assert!(GradientBoosting::fit(
            &data,
            GbtConfig {
                subsample: 0.0,
                ..GbtConfig::default()
            }
        )
        .is_err());
        assert!(GradientBoosting::fit(
            &data,
            GbtConfig {
                learning_rate: -1.0,
                ..GbtConfig::default()
            }
        )
        .is_err());
        assert!(GradientBoosting::fit(&Dataset::default(), GbtConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = smooth_data();
        let cfg = GbtConfig {
            seed: 42,
            n_rounds: 20,
            ..GbtConfig::default()
        };
        let a = GradientBoosting::fit(&data, cfg.clone()).unwrap();
        let b = GradientBoosting::fit(&data, cfg).unwrap();
        assert_eq!(a.predict(&[1.3]), b.predict(&[1.3]));
    }
}
