//! Multi-layer perceptron with ReLU activations and Adam.
//!
//! The Table 3/4 MLP baseline [38, 42]. Multi-output: one forward pass
//! predicts a whole vector (used by the recursive temperature baseline,
//! which predicts all sensors at once).

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::MlError;

/// MLP hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths (e.g. `[64, 64]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![64, 64],
            learning_rate: 1e-3,
            epochs: 60,
            batch_size: 32,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / n_in.max(1) as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out.push(self.b[o] + tesla_linalg::vector::dot(row, x));
        }
    }
}

/// A trained multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    config: MlpConfig,
    n_in: usize,
    n_out: usize,
    /// Per-feature standardization (fitted on training data).
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: Vec<f64>,
    y_std: Vec<f64>,
}

impl Mlp {
    /// Trains on multi-output data: `x` rows ↔ `y` rows.
    pub fn fit_multi(x: &[Vec<f64>], y: &[Vec<f64>], config: MlpConfig) -> Result<Self, MlError> {
        if x.is_empty() || y.is_empty() {
            return Err(MlError::Empty("MLP training data"));
        }
        if x.len() != y.len() {
            return Err(MlError::Shape(format!(
                "{} inputs vs {} outputs",
                x.len(),
                y.len()
            )));
        }
        let n_in = x[0].len();
        let n_out = y[0].len();
        if x.iter().any(|r| r.len() != n_in) || y.iter().any(|r| r.len() != n_out) {
            return Err(MlError::Shape("ragged rows".into()));
        }
        if config.batch_size == 0 || config.learning_rate <= 0.0 {
            return Err(MlError::BadConfig(
                "batch_size and learning_rate must be positive".into(),
            ));
        }
        let n = x.len();

        // Standardize inputs and outputs.
        let stats = |cols: usize, data: &[Vec<f64>]| {
            let mut mean = vec![0.0; cols];
            let mut std = vec![0.0; cols];
            for row in data {
                for (m, v) in mean.iter_mut().zip(row) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= n as f64;
            }
            for row in data {
                for j in 0..cols {
                    let c = row[j] - mean[j];
                    std[j] += c * c;
                }
            }
            for s in &mut std {
                *s = (*s / n as f64).sqrt();
                if *s < 1e-9 {
                    *s = 1.0;
                }
            }
            (mean, std)
        };
        let (x_mean, x_std) = stats(n_in, x);
        let (y_mean, y_std) = stats(n_out, y);

        let xs: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, v)| (v - x_mean[j]) / x_std[j])
                    .collect()
            })
            .collect();
        let ys: Vec<Vec<f64>> = y
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, v)| (v - y_mean[j]) / y_std[j])
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sizes = vec![n_in];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(n_out);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        let mut adam_t = 0usize;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

        for _epoch in 0..config.epochs {
            // Fisher-Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(config.batch_size) {
                // Zeroed gradient accumulators per layer.
                let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
                let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

                for &idx in batch {
                    // Forward pass, caching activations.
                    let mut acts: Vec<Vec<f64>> = vec![xs[idx].clone()];
                    let mut buf = Vec::new();
                    for (li, layer) in layers.iter().enumerate() {
                        layer.forward(acts.last().unwrap(), &mut buf);
                        if li + 1 < layers.len() {
                            for v in &mut buf {
                                *v = v.max(0.0); // ReLU
                            }
                        }
                        acts.push(buf.clone());
                    }
                    // Backward pass: dL/dout = 2(pred − target)/n_out.
                    let pred = acts.last().unwrap();
                    let mut delta: Vec<f64> = pred
                        .iter()
                        .zip(&ys[idx])
                        .map(|(p, t)| 2.0 * (p - t) / n_out as f64)
                        .collect();
                    for li in (0..layers.len()).rev() {
                        let input = &acts[li];
                        let layer = &layers[li];
                        // Gradients for this layer.
                        for o in 0..layer.n_out {
                            gb[li][o] += delta[o];
                            let grow = &mut gw[li][o * layer.n_in..(o + 1) * layer.n_in];
                            for (g, v) in grow.iter_mut().zip(input) {
                                *g += delta[o] * v;
                            }
                        }
                        if li > 0 {
                            // Propagate delta, applying ReLU mask of the
                            // previous layer's output.
                            let mut prev = vec![0.0; layer.n_in];
                            for (d, row) in delta.iter().zip(layer.w.chunks_exact(layer.n_in)) {
                                for (p, w) in prev.iter_mut().zip(row) {
                                    *p += d * w;
                                }
                            }
                            for (p, a) in prev.iter_mut().zip(input) {
                                if *a <= 0.0 {
                                    *p = 0.0;
                                }
                            }
                            delta = prev;
                        }
                    }
                }

                // Adam update.
                adam_t += 1;
                let bs = batch.len() as f64;
                let bias1 = 1.0 - b1.powi(adam_t as i32);
                let bias2 = 1.0 - b2.powi(adam_t as i32);
                for (li, layer) in layers.iter_mut().enumerate() {
                    for (k, &gwk) in gw[li].iter().enumerate() {
                        let g = gwk / bs + config.weight_decay * layer.w[k];
                        layer.mw[k] = b1 * layer.mw[k] + (1.0 - b1) * g;
                        layer.vw[k] = b2 * layer.vw[k] + (1.0 - b2) * g * g;
                        let mhat = layer.mw[k] / bias1;
                        let vhat = layer.vw[k] / bias2;
                        layer.w[k] -= config.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                    for (k, &gbk) in gb[li].iter().enumerate() {
                        let g = gbk / bs;
                        layer.mb[k] = b1 * layer.mb[k] + (1.0 - b1) * g;
                        layer.vb[k] = b2 * layer.vb[k] + (1.0 - b2) * g * g;
                        let mhat = layer.mb[k] / bias1;
                        let vhat = layer.vb[k] / bias2;
                        layer.b[k] -= config.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }

        Ok(Mlp {
            layers,
            config,
            n_in,
            n_out,
            x_mean,
            x_std,
            y_mean,
            y_std,
        })
    }

    /// Trains a single-output regressor.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: MlpConfig) -> Result<Self, MlError> {
        let y2: Vec<Vec<f64>> = y.iter().map(|&v| vec![v]).collect();
        Self::fit_multi(x, &y2, config)
    }

    /// The training configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Input dimension.
    pub fn n_inputs(&self) -> usize {
        self.n_in
    }

    /// Output dimension.
    pub fn n_outputs(&self) -> usize {
        self.n_out
    }

    /// Predicts the full output vector.
    pub fn predict_multi(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.n_in);
        let mut cur: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(j, v)| (v - self.x_mean[j]) / self.x_std[j])
            .collect();
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut buf);
            if li + 1 < self.layers.len() {
                for v in &mut buf {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut buf);
        }
        cur.iter()
            .enumerate()
            .map(|(j, v)| v * self.y_std[j] + self.y_mean[j])
            .collect()
    }

    /// Predicts a scalar (first output).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.predict_multi(x)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy(f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let a = i as f64 / 19.0 * 2.0 - 1.0;
                let b = j as f64 / 19.0 * 2.0 - 1.0;
                x.push(vec![a, b]);
                y.push(f(a, b));
            }
        }
        (x, y)
    }

    #[test]
    fn learns_linear_function() {
        let (x, y) = grid_xy(|a, b| 3.0 * a - 2.0 * b + 1.0);
        let cfg = MlpConfig {
            epochs: 80,
            ..MlpConfig::default()
        };
        let m = Mlp::fit(&x, &y, cfg).unwrap();
        let mut err = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            err += (m.predict(xi) - yi).abs();
        }
        err /= x.len() as f64;
        assert!(err < 0.1, "mean abs error {err}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // |a| is not representable by a linear model; ReLU nets nail it.
        let (x, y) = grid_xy(|a, b| a.abs() + 0.5 * b);
        let cfg = MlpConfig {
            epochs: 150,
            seed: 1,
            ..MlpConfig::default()
        };
        let m = Mlp::fit(&x, &y, cfg).unwrap();
        let mut err = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            err += (m.predict(xi) - yi).abs();
        }
        err /= x.len() as f64;
        assert!(err < 0.12, "mean abs error {err}");
    }

    #[test]
    fn multi_output_heads_learn_independent_targets() {
        let (x, _) = grid_xy(|_, _| 0.0);
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] * 2.0, -r[1] + 0.5]).collect();
        let cfg = MlpConfig {
            epochs: 80,
            seed: 2,
            ..MlpConfig::default()
        };
        let m = Mlp::fit_multi(&x, &y, cfg).unwrap();
        assert_eq!(m.n_outputs(), 2);
        let p = m.predict_multi(&[0.5, -0.5]);
        assert!((p[0] - 1.0).abs() < 0.15, "p0 {}", p[0]);
        assert!((p[1] - 1.0).abs() < 0.15, "p1 {}", p[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = grid_xy(|a, b| a + b);
        let cfg = MlpConfig {
            epochs: 5,
            seed: 7,
            ..MlpConfig::default()
        };
        let m1 = Mlp::fit(&x, &y, cfg.clone()).unwrap();
        let m2 = Mlp::fit(&x, &y, cfg).unwrap();
        assert_eq!(m1.predict(&[0.3, 0.3]), m2.predict(&[0.3, 0.3]));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Mlp::fit(&[], &[], MlpConfig::default()).is_err());
        let x = vec![vec![1.0]];
        assert!(Mlp::fit(&x, &[1.0, 2.0], MlpConfig::default()).is_err());
        let cfg = MlpConfig {
            batch_size: 0,
            ..MlpConfig::default()
        };
        assert!(Mlp::fit(&x, &[1.0], cfg).is_err());
    }
}
