//! CART regression tree: greedy variance-reduction splits.
//!
//! The base learner shared by [`crate::gbt`] and [`crate::forest`].

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
use crate::{Dataset, MlError};
use rand::rngs::StdRng;
use rand::RngExt;

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered per split; `None` = all (CART),
    /// `Some(k)` = random subset of size `k` (random-forest mode).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    root: Node,
    n_features: usize,
}

impl RegressionTree {
    /// Fits with deterministic feature order (no subsampling).
    pub fn fit(data: &Dataset, config: &TreeConfig) -> Result<Self, MlError> {
        Self::fit_impl(data, config, None)
    }

    /// Fits with random feature subsampling at each split (used by the
    /// random forest).
    pub fn fit_with_rng(
        data: &Dataset,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Result<Self, MlError> {
        Self::fit_impl(data, config, Some(rng))
    }

    fn fit_impl(
        data: &Dataset,
        config: &TreeConfig,
        mut rng: Option<&mut StdRng>,
    ) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::Empty("tree training data"));
        }
        let idx: Vec<usize> = (0..data.len()).collect();
        let root = Self::build(data, &idx, config, 0, &mut rng);
        Ok(RegressionTree {
            root,
            n_features: data.n_features(),
        })
    }

    fn mean(data: &Dataset, idx: &[usize]) -> f64 {
        idx.iter().map(|&i| data.y[i]).sum::<f64>() / idx.len() as f64
    }

    fn build(
        data: &Dataset,
        idx: &[usize],
        config: &TreeConfig,
        depth: usize,
        rng: &mut Option<&mut StdRng>,
    ) -> Node {
        if depth >= config.max_depth
            || idx.len() < config.min_samples_split
            || idx.len() < 2 * config.min_samples_leaf
        {
            return Node::Leaf {
                value: Self::mean(data, idx),
            };
        }

        // Candidate features: all, or a random subset.
        let d = data.n_features();
        let features: Vec<usize> = match (config.max_features, rng.as_deref_mut()) {
            (Some(k), Some(rng)) if k < d => {
                // Partial Fisher-Yates for k distinct indices.
                let mut pool: Vec<usize> = (0..d).collect();
                for i in 0..k {
                    let j = rng.random_range(i..d);
                    pool.swap(i, j);
                }
                pool.truncate(k);
                pool
            }
            _ => (0..d).collect(),
        };

        // Best split by SSE reduction, scanning sorted feature values.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let total_sum: f64 = idx.iter().map(|&i| data.y[i]).sum();
        let total_sq: f64 = idx.iter().map(|&i| data.y[i] * data.y[i]).sum();
        let n = idx.len() as f64;
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut sorted = idx.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| {
                data.x[a][f]
                    .partial_cmp(&data.x[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (pos, &i) in sorted.iter().enumerate().take(sorted.len() - 1) {
                let yi = data.y[i];
                left_sum += yi;
                left_sq += yi * yi;
                let nl = (pos + 1) as f64;
                let nr = n - nl;
                if (pos + 1) < config.min_samples_leaf
                    || (sorted.len() - pos - 1) < config.min_samples_leaf
                {
                    continue;
                }
                let xv = data.x[i][f];
                let xn = data.x[sorted[pos + 1]][f];
                if xn <= xv {
                    continue; // no gap to split in
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.as_ref().is_none_or(|(_, _, b)| sse < *b) {
                    best = Some((f, 0.5 * (xv + xn), sse));
                }
            }
        }

        match best {
            Some((feature, threshold, sse)) if sse < parent_sse - 1e-12 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
                let left = Self::build(data, &left_idx, config, depth + 1, rng);
                let right = Self::build(data, &right_idx, config, depth + 1, rng);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf {
                value: Self::mean(data, idx),
            },
        }
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        // y = 1 for x < 0.5, y = 5 for x >= 0.5.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let data = step_data();
        let tree = RegressionTree::fit(&data, &TreeConfig::default()).unwrap();
        assert!((tree.predict(&[0.2]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[0.8]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_gives_global_mean() {
        let data = step_data();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &cfg).unwrap();
        let mean = data.y.iter().sum::<f64>() / data.y.len() as f64;
        assert!((tree.predict(&[0.1]) - mean).abs() < 1e-9);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn fits_piecewise_multifeature_data() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = i as f64 / 9.0;
                let b = j as f64 / 9.0;
                x.push(vec![a, b]);
                y.push(if a > 0.5 { 2.0 } else { 0.0 } + if b > 0.3 { 1.0 } else { 0.0 });
            }
        }
        let data = Dataset::new(x, y).unwrap();
        let tree = RegressionTree::fit(&data, &TreeConfig::default()).unwrap();
        assert!((tree.predict(&[0.9, 0.9]) - 3.0).abs() < 0.2);
        assert!((tree.predict(&[0.1, 0.1]) - 0.0).abs() < 0.2);
        assert!((tree.predict(&[0.9, 0.1]) - 2.0).abs() < 0.2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let data = step_data();
        let cfg = TreeConfig {
            min_samples_leaf: 15,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &cfg).unwrap();
        // With 40 points and leaf >= 15, at most 2 leaves are possible.
        assert!(tree.n_leaves() <= 2);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let data = Dataset::new(x, y).unwrap();
        let tree = RegressionTree::fit(&data, &TreeConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[7.0]), 3.0);
    }

    #[test]
    fn empty_data_is_an_error() {
        let data = Dataset::default();
        assert!(RegressionTree::fit(&data, &TreeConfig::default()).is_err());
    }

    #[test]
    fn duplicate_feature_values_dont_split_inside_ties() {
        // All x identical: no valid split exists.
        let x: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let data = Dataset::new(x, y).unwrap();
        let tree = RegressionTree::fit(&data, &TreeConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
    }
}
