#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Umbrella crate for the TESLA reproduction.
//!
//! Re-exports the workspace's sub-crates under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`sim`] — the simulated data-center testbed (servers, thermal
//!   network, PID-controlled ACU, sensors, Modbus facade).
//! * [`workload`] — load generation (diurnal profiles, Kubernetes-like
//!   jobs).
//! * [`telemetry`] — in-memory time-series store, collector, queue.
//! * [`historian`] — embedded durable time-series engine behind the
//!   `MetricStore` trait: sharded ingest, Gorilla compression,
//!   CRC-framed WAL with crash recovery, retention/downsampling, and
//!   deterministic episode replay (see docs/HISTORIAN.md).
//! * [`linalg`] — dense linear algebra, ridge regression, statistics.
//! * [`forecast`] — TESLA's DC time-series model (ASP/ACU/DCS/energy
//!   sub-modules) and the recursive AR baseline.
//! * [`ml`] — MLP / CART / gradient-boosting / random-forest baselines.
//! * [`gp`] — Matérn 5/2 fixed-noise Gaussian processes, Sobol QMC.
//! * [`bo`] — bootstrap error monitor, constrained NEI, the Bayesian
//!   optimizer.
//! * [`core`] — the controllers (TESLA, fixed, Lazic MPC, TSRL) and the
//!   end-to-end evaluation machinery.
//! * [`units`] — zero-cost units-of-measure newtypes ([`units::Celsius`],
//!   [`units::Kilowatts`], …) used across every public API.
//! * [`obs`] — metrics registry, span tracing, Prometheus/JSONL
//!   exporters (see docs/OBSERVABILITY.md; off until
//!   [`obs::set_enabled`] is called).
//! * [`reactor`] — dependency-free non-blocking TCP event loop
//!   (sharded sweep threads, idle-connection poll backoff) that hosts
//!   the network servers.
//! * [`net`] — the TLP/1 network service: batched telemetry ingest
//!   into the historian behind a bounded drop-oldest queue, plus the
//!   query/status/set-point API (wire protocol spec: docs/SERVICE.md).
//!
//! Start with `examples/quickstart.rs`, DESIGN.md (system inventory) and
//! EXPERIMENTS.md (paper-vs-measured for every table and figure).
//!
//! # Example
//!
//! ```
//! use tesla::units::{Celsius, DegC};
//!
//! // Typed quantities: Celsius − Celsius = DegC; cross-unit arithmetic
//! // is a compile error rather than a runtime surprise.
//! let headroom: DegC = Celsius::new(22.0) - Celsius::new(21.2);
//! assert!(headroom.value() > 0.0);
//!
//! // Observability is off by default; opt in and counters go live.
//! tesla::obs::set_enabled(true);
//! let steps = tesla::obs::global().counter("quickstart_steps_total", &[]);
//! steps.inc();
//! assert_eq!(steps.get(), 1);
//! ```

pub use tesla_bo as bo;
pub use tesla_core as core;
pub use tesla_fleet as fleet;
pub use tesla_forecast as forecast;
pub use tesla_gp as gp;
pub use tesla_historian as historian;
pub use tesla_linalg as linalg;
pub use tesla_ml as ml;
pub use tesla_net as net;
pub use tesla_obs as obs;
pub use tesla_reactor as reactor;
pub use tesla_sim as sim;
pub use tesla_telemetry as telemetry;
pub use tesla_units as units;
pub use tesla_workload as workload;
