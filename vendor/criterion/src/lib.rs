#![forbid(unsafe_code)]
//! Offline stand-in for `criterion`: a minimal wall-clock harness with
//! the same macro/entry-point shape (`criterion_group!`,
//! `criterion_main!`, `bench_function`, `iter`, `iter_batched`). Reports
//! median and mean ns/iter to stdout; no statistics beyond that.

use std::time::Instant;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to each benchmark closure; owns the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<40} median {:>12.0} ns/iter   mean {:>12.0} ns/iter   ({} samples)",
            median,
            mean,
            sorted.len()
        );
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| v.iter().sum::<i32>(),
                BatchSize::SmallInput,
            )
        });
    }
}
