#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) surface the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic xoshiro256++ generator.
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, so
//!   nearby seeds yield uncorrelated streams.
//! * [`Rng`] (re-exported as [`RngExt`]) — `random::<T>()`,
//!   `random_range(..)`, `random_bool(..)`.
//!
//! Statistical quality is that of xoshiro256++ (passes BigCrush); the
//! implementation is deterministic across platforms, which is what the
//! reproduction actually depends on.

pub mod rngs;

/// A source of random 64-bit words. Provided methods mirror the subset of
/// `rand`'s `Rng`/`RngExt` API used in this workspace.
pub trait Rng {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A uniform value from `range` (half-open or inclusive).
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// `rand 0.9+` splits ergonomic helpers into an extension trait; here both
/// names refer to the same trait so either import style works.
pub use Rng as RngExt;

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed` via
    /// SplitMix64 (distinct u64 seeds give independent streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator.
pub trait Random: Sized {
    /// Draws one value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit multiply.
#[inline]
fn mul_reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_reduce(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + mul_reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
int_ranges!(usize, u64, u32, u16, u8);

macro_rules! signed_int_ranges {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + mul_reduce(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}
signed_int_ranges!(i64 => u64, i32 => u32, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::random_from(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(0usize..=4);
            assert!(j <= 4);
            let x = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn all_usize_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
