//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Deterministic across platforms and fast enough that RNG cost never
/// shows up in the simulator profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion (the reference seeding for xoshiro).
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}
