#![forbid(unsafe_code)]
//! Offline stand-in for `crossbeam`: the `channel` module only, with the
//! bounded MPMC surface this workspace uses. Built on
//! `Mutex<VecDeque> + Condvar`; endpoints are cloneable and disconnection
//! is tracked by live-endpoint counts, matching crossbeam's semantics.

pub mod channel {
    //! Bounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error from [`Sender::send`]: every receiver was dropped. Carries
    /// the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the message is returned.
        Full(T),
        /// Every receiver was dropped; the message is returned.
        Disconnected(T),
    }

    /// Error from [`Receiver::recv`]: the channel is empty and every
    /// sender was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(msg);
                    drop(st);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }

        /// Sends without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty. Fails only when
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Receives, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_and_len() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.send(3), Err(SendError(3))));
    }

    #[test]
    fn recv_timeout_empty_and_disconnected() {
        let (tx, rx) = bounded::<i32>(1);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_totals_preserved() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut n = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                        n += 1;
                    }
                    (sum, n)
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let (mut total, mut count) = (0, 0);
        for c in consumers {
            let (s, n) = c.join().unwrap();
            total += s;
            count += n;
        }
        assert_eq!(count, 1000);
        assert_eq!(total, 4 * (0..250u64).sum::<u64>());
    }
}
