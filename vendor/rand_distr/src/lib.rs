#![forbid(unsafe_code)]
//! Offline stand-in for `rand_distr`: only the [`Normal`] distribution,
//! which is all this workspace draws from.

use rand::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The standard deviation was negative or non-finite.
    BadStdDev,
    /// The mean was non-finite.
    BadMean,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadStdDev => write!(f, "standard deviation must be finite and >= 0"),
            Error::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative, `mean` finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadStdDev);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller on two fresh uniforms. u1 in (0, 1] keeps ln finite.
        let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_match_parameters() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_degenerate_at_mean() {
        let d = Normal::new(5.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
