#![forbid(unsafe_code)]
//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(..)]`, range/collection/bool strategies,
//! `prop_map`, and the `prop_assert*` macros. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly; there is no shrinking — the failing inputs are
//! printed instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Top-level entry: expands each contained `#[test] fn name(args in
/// strategies) { body }` into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(err) = result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case is
/// reported (with the optional formatted message) instead of panicking
/// mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert!` for inequality, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_are_respected(
            x in 0.5f64..2.5,
            n in 3usize..9,
            b in crate::bool::ANY,
            v in crate::collection::vec(-1.0f64..1.0, 2..6),
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            let _: bool = b;
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!((-1.0..1.0).contains(e));
            }
        }

        #[test]
        fn prop_map_transforms(doubled in (1usize..10).prop_map(|n| n * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..20).contains(&doubled));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x was {x}");
            }
        }
        always_fails();
    }
}
