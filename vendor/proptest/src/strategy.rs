//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_strategies!(usize, u64, u32, u16, u8, i64, i32);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// The output of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
