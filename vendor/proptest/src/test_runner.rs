//! Case runner configuration, error type, and the deterministic RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator used to produce cases: SplitMix64 seeded from
/// an FNV-1a hash of the test name, so every run of a given test sees the
/// same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
