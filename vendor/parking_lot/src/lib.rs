#![forbid(unsafe_code)]
//! Offline stand-in for `parking_lot`: `RwLock`/`Mutex` with the
//! guard-returning (non-`Result`) API, implemented over `std::sync`.
//! Lock poisoning is ignored, matching parking_lot's semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
