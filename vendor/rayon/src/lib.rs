#![forbid(unsafe_code)]
//! Offline stand-in for `rayon`.
//!
//! The build environment cannot fetch crates.io, so the parallel
//! iterator entry points used by this workspace (`join`,
//! `into_par_iter`, `par_iter`, `par_chunks_mut`, …) degrade to their
//! sequential `std` equivalents. Call sites keep rayon's shape, so a real
//! rayon can be swapped back in by flipping the workspace dependency —
//! nothing else changes.

/// Runs both closures and returns both results (sequentially here).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (oper_a(), oper_b())
}

pub mod prelude {
    //! Parallel-iterator traits, mapped onto sequential `std` iterators.

    /// `into_par_iter()` for any `IntoIterator` — sequential here.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// Slice entry points (`par_iter`, `par_chunks_mut`, …) — sequential.
    pub trait ParallelSliceOps<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceOps<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_chunks_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3, 4, 5];
        v.par_chunks_mut(2)
            .for_each(|c| c.iter_mut().for_each(|x| *x *= 10));
        assert_eq!(v, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn into_par_iter_collects() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }
}
