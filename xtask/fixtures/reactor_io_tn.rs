//! True-negative fixture for `no-blocking-io-in-reactor`: the
//! non-blocking idiom, deliberate off-reactor blocking behind
//! allowlist comments, and test code are all clean.

impl Handler for GoodHandler {
    fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action {
        // Plain `.read(`/`.write(` with WouldBlock handling is the
        // blessed non-blocking idiom.
        match self.stream.read(&mut self.scratch) {
            Ok(n) => input.extend_from_slice(&self.scratch[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(_) => return Action::Close,
        }
        match self.stream.write(&output[self.cursor..]) {
            Ok(n) => self.cursor += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(_) => return Action::Close,
        }
        let parts: Vec<&str> = line.split(' ').collect();
        let rejoined = parts.join(" "); // separator join, not a thread join
        Action::Continue
    }
}

impl Queue {
    fn pop_blocking(&self) -> Option<Batch> {
        // lint:allow(no-blocking-io-in-reactor): dedicated writer threads only
        let guard = self.ready.wait(guard).ok()?;
        Some(guard.batch)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn blocking_is_fine_in_tests() {
        stream.write_all(b"PING\n").unwrap();
        reader.read_line(&mut line).unwrap();
        handle.join().unwrap();
    }
}
