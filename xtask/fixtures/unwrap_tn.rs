// Fixture: true negatives for no-unwrap-in-control-path.
// Never compiled; scanned by xtask's unit tests.

pub fn read_register(map: &std::collections::HashMap<u16, u16>) -> Option<u16> {
    // A comment mentioning .unwrap() does not count.
    let fallback = map.get(&1).copied().unwrap_or(0);
    let _ = fallback;
    map.get(&0).copied()
}

pub fn checked(map: &std::collections::HashMap<u16, u16>) -> u16 {
    // lint:allow(no-unwrap-in-control-path): key 0 inserted at construction
    *map.get(&0).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u16> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
