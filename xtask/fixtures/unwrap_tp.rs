// Fixture: true positive for no-unwrap-in-control-path.
// Never compiled; scanned by xtask's unit tests.

pub fn read_register(map: &std::collections::HashMap<u16, u16>) -> u16 {
    *map.get(&0).unwrap()
}
