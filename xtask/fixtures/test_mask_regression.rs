//! Regression fixture for `test_line_mask`. Tagged lines must either be
//! hidden as test code or stay visible to the rules.

pub fn live_before() {} // LIVE

#[cfg(test)]
// helper notes: the shard map { id -> series } is rebuilt per case MASKED
mod tests {
    // MASKED
    fn masked_helper() {
        let v: Option<u8> = None;
        v.unwrap(); // MASKED: test code, must not be flagged
    } // MASKED
} // MASKED

#[cfg(test)]
use std::collections::HashMap; // MASKED: the use item itself

pub fn live_after() {
    // LIVE
    let v: Option<u8> = Some(1);
    v.unwrap(); // LIVE: exactly this unwrap must be flagged
} // LIVE

#[cfg(test)] mod inline_brace_tests {
    fn also_masked() {
        let v: Option<u8> = None;
        v.unwrap(); // MASKED
    }
} // MASKED

pub fn live_tail() {} // LIVE
