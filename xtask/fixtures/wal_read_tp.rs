//! True-positive fixture for `no-unchecked-wal-read`: raw byte
//! deserialization with no CRC framing, exactly what the rule exists to
//! catch. Never compiled — included as text by the lint tests.

fn parse_header_naked(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"))
}

fn slurp_segment(file: &mut std::fs::File, buf: &mut [u8]) {
    use std::io::Read;
    file.read_exact(buf).expect("short read");
}

fn drain_tail(file: &mut std::fs::File, buf: &mut [u8]) -> usize {
    use std::io::Read;
    file.read(&mut buf[..]).expect("read failed")
}
