// Fixture: true negatives for no-raw-f64-in-public-api.
// Never compiled; scanned by xtask's unit tests.

use tesla_units::{Celsius, Kilowatts};

pub struct AcuState {
    pub supply_power: Kilowatts,
    /// Not a quantity name: plain ratios stay raw.
    pub duty_ratio: f64,
    pub powers_kw: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry
}

impl AcuState {
    pub fn supply_temp(&self) -> Celsius {
        Celsius::new(16.0)
    }

    fn private_temp_c(&self) -> f64 {
        16.0
    }
}

#[cfg(test)]
mod tests {
    pub fn test_only_temp_c() -> f64 {
        21.0
    }
}
