// Fixture: true negatives for bounded-setpoint-literal.
// Never compiled; scanned by xtask's unit tests.

pub fn pick_setpoint(raw: f64) -> Celsius {
    // Literals routed through the envelope are fine.
    let setpoint = SETPOINT_RANGE.clamp(Celsius::new(raw));
    let floor_setpoint = SETPOINT_RANGE.min();
    let _ = floor_setpoint;
    // Non-setpoint temperatures may use literals.
    let ambient = Celsius::new(25.0);
    let _ = ambient;
    // lint:allow(bounded-setpoint-literal): scenario fixture outside the envelope
    let stress_setpoint = Celsius::new(45.0);
    let _ = stress_setpoint;
    setpoint
}
