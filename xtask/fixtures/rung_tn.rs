// Fixture: true negatives for supervisor-transition-exhaustive.
// Never compiled; scanned by xtask's unit tests.

pub fn escalated(rung: Rung) -> Rung {
    match rung {
        Rung::Normal => Rung::HoldLastSafe,
        Rung::HoldLastSafe | Rung::SafeMode => Rung::SafeMode,
    }
}

pub fn unrelated_match(x: Option<u32>) -> u32 {
    // Wildcards in non-Rung matches are fine.
    match x {
        Some(v) => v,
        _ => 0,
    }
}
