//! True-negative fixture for `metric-name-format`: compliant names,
//! non-literal names (out of scope), and one allowlisted exception.

fn good_metric_names(name: &'static str) {
    tesla_obs::counter!("tesla_control_steps_total").inc();
    tesla_obs::gauge!("sim_pid_error_celsius").set(0.0);
    tesla_obs::histogram!("tesla_decide_seconds").observe(0.01);
    tesla_obs::global()
        .counter("supervisor_rung_transitions_total", &[("to", "Normal")])
        .inc();
    tesla_obs::global().histogram("forecast_fit_seconds", &[]).observe(0.2);
    let _dynamic = tesla_obs::global().gauge(name, &[]);
    // lint:allow(metric-name-format): legacy dashboard series kept verbatim
    tesla_obs::counter!("legacy-CamelCase").inc();
}
