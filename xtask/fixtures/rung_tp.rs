// Fixture: true positives for supervisor-transition-exhaustive.
// Never compiled; scanned by xtask's unit tests.

pub fn escalated(rung: Rung) -> Rung {
    match rung {
        Rung::Normal => Rung::HoldLastSafe,
        _ => Rung::SafeMode,
    }
}

pub fn is_normal(rung: Rung) -> bool {
    match rung {
        Rung::Normal => true,
        Rung::HoldLastSafe => false,
    }
}
