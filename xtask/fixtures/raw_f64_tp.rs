// Fixture: true positives for no-raw-f64-in-public-api.
// Never compiled; scanned by xtask's unit tests.

pub struct AcuState {
    pub supply_power_kw: f64,
}

impl AcuState {
    pub fn supply_temp(&self) -> f64 {
        16.0
    }

    pub fn set_setpoint(
        &mut self,
        setpoint_c: f64,
    ) {
        let _ = setpoint_c;
    }
}
