// Fixture: true negatives for no-raw-zone-index-in-public-api.
// Never compiled; scanned by xtask's unit tests.

use tesla_units::ZoneId;

pub struct Decision {
    pub zone: ZoneId,
    /// A fleet size is a quantity, not an address: plurals stay raw.
    pub n_zones: usize,
}

impl Decision {
    pub fn zone(&self) -> ZoneId {
        self.zone
    }

    pub fn zones(&self) -> usize {
        self.n_zones
    }

    // lint:allow(no-raw-zone-index-in-public-api): wire-format cursor word, not a zone address
    pub fn zone_cursor_word(zone: usize) -> usize {
        zone * 8
    }

    fn private_zone_slot(&self, zone: usize) -> usize {
        zone % self.n_zones
    }
}

#[cfg(test)]
mod tests {
    pub fn test_only_zone_index() -> usize {
        3
    }
}
