//! TP fixture for `panic-free-control-path`: a transitive unwrap and an
//! unchecked index, both reachable from the `decide` root.

pub fn decide(history: &[f64]) -> f64 {
    let hint = latest(history);
    refine(hint)
}

fn latest(history: &[f64]) -> f64 {
    // Unchecked index reachable from decide.
    history[history.len() - 1]
}

fn refine(hint: f64) -> f64 {
    let candidate: Option<f64> = Some(hint);
    // Transitive unwrap reachable from decide via latest/refine.
    candidate.unwrap()
}
