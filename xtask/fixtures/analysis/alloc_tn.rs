//! TN fixture for `no-alloc-in-decide-steady-state`: steady-state work
//! reuses a caller-owned buffer; the one-time warmup that does allocate
//! is annotated as setup and pruned from the traversal.

pub struct Scratch {
    grid: [f64; 8],
}

pub fn decide(scratch: &mut Scratch) -> f64 {
    fill_grid(&mut scratch.grid);
    scratch.grid.iter().sum()
}

fn fill_grid(grid: &mut [f64; 8]) {
    for (i, slot) in grid.iter_mut().enumerate() {
        *slot = i as f64;
    }
}

// analysis:setup: one-time warmup before the control loop starts
pub fn warmup(n: usize) -> Vec<f64> {
    let mut grid = Vec::with_capacity(n);
    grid.extend((0..n).map(|i| i as f64));
    grid
}
