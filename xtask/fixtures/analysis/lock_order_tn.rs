//! TN fixture for `lock-order`: acquisitions follow the declared order,
//! guards are dropped before I/O, and block scoping bounds extents.

pub fn ordered(registry: &Registry, store: &Store) {
    let shard_guard = store.shard.lock();
    // Declared order: historian.shard before obs.registry.shard.
    let metrics_guard = registry.metrics.read();
    let _ = (&shard_guard, &metrics_guard);
}

pub fn drop_before_io(store: &Store) {
    let shard_guard = store.shard.lock();
    let _ = &shard_guard;
    drop(shard_guard);
    store.file.sync_all();
}

pub fn scoped_then_io(store: &Store) {
    {
        let shard_guard = store.shard.lock();
        let _ = &shard_guard;
    }
    store.file.sync_all();
}
