//! TP fixture for `no-alloc-in-decide-steady-state`: the decide path
//! heap-allocates on every call, directly and transitively.

pub fn decide(n: usize) -> f64 {
    let grid = build_grid(n);
    grid.iter().sum()
}

fn build_grid(n: usize) -> Vec<f64> {
    // Fresh per-decision allocation: flagged.
    let mut grid = Vec::with_capacity(n);
    for i in 0..n {
        grid.push(i as f64);
    }
    grid
}
