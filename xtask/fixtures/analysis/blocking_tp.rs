//! TP fixture for `no-blocking-in-deadline-path`: the deadline-bounded
//! `step` root reaches filesystem I/O, an unbounded receive, and a
//! sleep.

pub fn step(rx: &Receiver) -> f64 {
    persist_snapshot();
    poll(rx)
}

fn persist_snapshot() {
    // Filesystem write inside the deadline path.
    std::fs::write("/tmp/snapshot.bin", b"state").ok();
}

fn poll(rx: &Receiver) -> f64 {
    // Unbounded blocking receive, then an unconditional stall.
    let v = rx.recv();
    std::thread::sleep(std::time::Duration::from_millis(5));
    v
}
