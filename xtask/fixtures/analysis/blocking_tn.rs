//! TN fixture for `no-blocking-in-deadline-path`: the deadline path
//! uses bounded receives only; blocking work exists but is unreachable
//! from the `step` root.

pub fn step(rx: &Receiver) -> f64 {
    match rx.recv_timeout(budget()) {
        Ok(v) => v,
        Err(_) => fallback(),
    }
}

fn budget() -> std::time::Duration {
    std::time::Duration::from_millis(50)
}

fn fallback() -> f64 {
    0.0
}

/// Background persistence: blocking is fine here, off the deadline path.
pub fn background_flush() {
    std::fs::write("/tmp/snapshot.bin", b"state").ok();
}
