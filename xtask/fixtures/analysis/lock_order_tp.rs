//! TP fixture for `lock-order`: an order inversion (registry shard
//! acquired before a historian shard) and a lock held across I/O.

pub fn inverted(registry: &Registry, store: &Store) {
    let metrics_guard = registry.metrics.read();
    // Inversion: historian.shard must be acquired before
    // obs.registry.shard per the declared order.
    let shard_guard = store.shard.lock();
    let _ = (&metrics_guard, &shard_guard);
}

pub fn flush_under_lock(store: &Store) {
    let shard_guard = store.shard.lock();
    // Blocking I/O while the shard guard is held.
    store.file.sync_all();
    let _ = &shard_guard;
}
