//! TN fixture for `panic-free-control-path`: the decide path handles
//! every failure explicitly; panicky code exists but is unreachable
//! from the root, or carries an allow with a written invariant.

pub fn decide(history: &[f64]) -> f64 {
    let hint = match history.last() {
        Some(v) => *v,
        None => 0.0,
    };
    refine(hint).unwrap_or(0.0)
}

fn refine(hint: f64) -> Option<f64> {
    if hint.is_finite() {
        Some(hint * 0.5)
    } else {
        None
    }
}

/// Not reachable from `decide`; reachability is what the rule proves.
pub fn dead_debug_helper(v: Option<f64>) -> f64 {
    v.unwrap()
}
