//! True-positive fixture for `no-unframed-checkpoint-read`: raw byte
//! deserialization of checkpoint state with no CRC framing, exactly
//! what the rule exists to catch. Never compiled — included as text by
//! the lint tests.

fn parse_cursor_naked(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"))
}

fn slurp_checkpoint(file: &mut std::fs::File, buf: &mut Vec<u8>) {
    use std::io::Read;
    file.read_to_end(buf).expect("read checkpoint");
}

fn drain_partial(file: &mut std::fs::File, buf: &mut [u8]) -> usize {
    use std::io::Read;
    file.read(&mut buf[..]).expect("read failed")
}
