// Fixture: true positives for no-raw-zone-index-in-public-api.
// Never compiled; scanned by xtask's unit tests.

pub struct RawDecision {
    pub zone: usize,
    pub minute: u64,
}

impl RawDecision {
    pub fn zone_of(&self) -> usize {
        self.zone
    }

    pub fn neighbors(
        &self,
        zone: usize,
    ) -> Vec<usize> {
        vec![zone.saturating_sub(1), zone + 1]
    }
}
