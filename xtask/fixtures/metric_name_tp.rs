//! True-positive fixture for `metric-name-format`: every constructor
//! call below violates the naming convention and must be flagged.

fn bad_metric_names() {
    tesla_obs::counter!("requestsServed_total").inc();
    tesla_obs::counter!("sim_write_errors").inc();
    tesla_obs::gauge!("supervisor_rung").set(1.0);
    tesla_obs::histogram!("decide_latency").observe(0.1);
    tesla_obs::global()
        .counter("faults__injected_total", &[("kind", "stuck")])
        .inc();
    tesla_obs::global().gauge("pid_error_", &[]).set(0.0);
}
