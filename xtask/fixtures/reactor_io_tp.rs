//! True-positive fixture for `no-blocking-io-in-reactor`: every
//! blocking spelling below must be flagged when it appears, bare, in
//! event-loop code.

impl Handler for BadHandler {
    fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action {
        // An exact read loops until the peer supplies the bytes — on a
        // non-blocking socket it spins, on a blocking one it parks the
        // whole shard.
        self.stream.read_exact(&mut self.header).ok();
        let mut line = String::new();
        self.reader.read_line(&mut line).ok();
        // write_all retries until the kernel buffer drains: a slow
        // consumer stalls every other connection on the shard.
        self.stream.write_all(output).ok();
        self.stream.flush().ok();
        Action::Continue
    }
}

fn sweep_helpers(shard: &mut Shard) {
    // Parking the sweep thread freezes every parked connection.
    thread::sleep(Duration::from_millis(5));
    let batch = shard.queue_rx.recv();
    let _ = shard.cond.wait(guard);
    let _ = shard.writer_handle.join();
    // Flipping a socket back to blocking undoes the whole design.
    shard.stream.set_nonblocking(false).ok();
    // Filesystem access has unbounded latency under fsync pressure.
    let config = std::fs::read_to_string("reactor.toml");
}
