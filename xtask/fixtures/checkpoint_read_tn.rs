//! True-negative fixture for `no-unframed-checkpoint-read`: encoding,
//! allowlisted reader internals, option setters, and test code are all
//! fine. Never compiled — included as text by the lint tests.

fn open_checkpoint(path: &std::path::Path) -> std::fs::File {
    std::fs::OpenOptions::new()
        .read(true)
        .open(path)
        .expect("open checkpoint")
}

fn encode_state(cursor: u64, setpoint: f64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&cursor.to_le_bytes());
    out.extend_from_slice(&setpoint.to_le_bytes());
    out
}

fn decode_inside_checked_reader(payload: &[u8]) -> u32 {
    // lint:allow(no-unframed-checkpoint-read): the CRC-checked reader itself
    u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"))
}

#[cfg(test)]
mod tests {
    fn raw_is_fine_in_tests(buf: &[u8]) -> u64 {
        u64::from_le_bytes(buf[0..8].try_into().unwrap())
    }
}
