// Fixture: true positive for bounded-setpoint-literal.
// Never compiled; scanned by xtask's unit tests.

pub fn pick_setpoint() -> Celsius {
    let setpoint = Celsius::new(21.5);
    setpoint
}
