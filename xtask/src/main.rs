//! Workspace automation for the TESLA repro.
//!
//! `cargo xtask lint [--deny] [--report <path>]` runs the custom
//! static-analysis pass over the control crates (`crates/core`,
//! `crates/sim`, `crates/forecast`). See `lints.rs` for the rules and
//! DESIGN.md ("Static analysis & unit safety") for the rationale.
//!
//! Exit status: 0 when no active (non-allowlisted) findings, or when
//! run without `--deny`; 1 with `--deny` and active findings; 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

mod analyze;
mod bench;
mod links;
mod lints;

use lints::Finding;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => analyze::run(&args[1..]),
        Some("check-fixtures") => check_fixtures(),
        Some("check-links") => check_links(),
        Some("bench-diff") => bench_diff(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint [--deny] [--report <path>]   run the static-analysis pass\n    \
           --deny            exit nonzero on any non-allowlisted finding\n    \
           --report <path>   JSON report path (default target/lint-report.json)\n  \
         analyze [--deny] [--report <path>] [--baseline <path>] [--write-baseline]\n    \
                                           call-graph analysis: panic-freedom, hot-path\n    \
                                           allocation, lock-order, deadline-blocking\n    \
           --deny            exit nonzero when a rule exceeds its baseline count\n    \
           --write-baseline  record current active counts as the new ratchet\n  \
         check-fixtures                    every rule must have TP and TN fixtures\n  \
         check-links                       verify relative links in markdown docs\n  \
         bench-diff <old.json> <new.json>  fail on >{}% tesla_decide_seconds p50 regression",
        bench::BUDGET_PERCENT
    );
}

fn bench_diff(args: &[String]) -> ExitCode {
    let [old_path, new_path] = args else {
        eprintln!("usage: cargo xtask bench-diff <old.json> <new.json>");
        return ExitCode::from(2);
    };
    let read = |p: &String| match fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("xtask bench-diff: cannot read {p}: {e}");
            None
        }
    };
    let (Some(old_json), Some(new_json)) = (read(old_path), read(new_path)) else {
        return ExitCode::from(2);
    };
    let results = bench::gate_results(&old_json, &new_json);
    if results.is_empty() {
        eprintln!(
            "xtask bench-diff: cannot compare: the artifacts share no gate metric \
             ({}, {}, {}, {}, {}, {}, or {})",
            bench::GATE_METRIC,
            bench::INGEST_METRIC,
            bench::RECOVERY_METRIC,
            bench::NET_INGEST_METRIC,
            bench::NET_QUERY_METRIC,
            bench::FLEET_THROUGHPUT_METRIC,
            bench::FLEET_DECIDE_METRIC
        );
        return ExitCode::from(2);
    }
    let mut failed = false;
    for r in &results {
        println!(
            "xtask bench-diff: {} {:.4} -> {:.4} ({:+.1}%)",
            r.metric, r.old, r.new, r.regression_pct
        );
        if r.over_budget() {
            eprintln!(
                "xtask bench-diff: FAIL — {} regressed {:+.1}%, budget is {:.1}%",
                r.metric, r.regression_pct, r.budget_pct
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("xtask bench-diff: {} gate(s) within budget", results.len());
        ExitCode::SUCCESS
    }
}

/// Crates scanned per rule (paths relative to the workspace root).
const CONTROL_CRATES: [&str; 3] = ["crates/core/src", "crates/sim/src", "crates/forecast/src"];
const UNWRAP_CRATES: [&str; 3] = ["crates/core/src", "crates/sim/src", "crates/fleet/src"];
const RUNG_CRATES: [&str; 1] = ["crates/core/src"];
/// The fleet crate's public surface addresses zones; its sources are
/// the scope of `no-raw-zone-index-in-public-api`.
const FLEET_CRATES: [&str; 1] = ["crates/fleet/src"];
/// The historian owns the WAL; its sources are the scope of
/// `no-unchecked-wal-read`.
const WAL_CRATES: [&str; 1] = ["crates/historian/src"];
/// The control-plane crate owns the checkpoint codec; its sources are
/// the scope of `no-unframed-checkpoint-read`.
const CHECKPOINT_CRATES: [&str; 1] = ["crates/core/src"];
/// Every crate that emits metrics through tesla-obs.
const METRIC_CRATES: [&str; 9] = [
    "crates/core/src",
    "crates/sim/src",
    "crates/forecast/src",
    "crates/bo/src",
    "crates/bench/src",
    "crates/obs/src",
    "crates/historian/src",
    "crates/net/src",
    "crates/fleet/src",
];
/// Crates whose code runs on (or is called from) reactor sweep
/// threads; the scope of `no-blocking-io-in-reactor`.
const REACTOR_CRATES: [&str; 2] = ["crates/reactor/src", "crates/net/src"];
const SUPERVISOR_PATH: &str = "crates/core/src/supervisor.rs";

fn lint(args: &[String]) -> ExitCode {
    let mut deny = false;
    let mut report_path = PathBuf::from("target/lint-report.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--report" => match it.next() {
                Some(p) => report_path = PathBuf::from(p),
                None => {
                    eprintln!("xtask lint: --report needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let root = workspace_root();
    let supervisor_src = match fs::read_to_string(root.join(SUPERVISOR_PATH)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask lint: cannot read {SUPERVISOR_PATH}: {e}");
            return ExitCode::from(2);
        }
    };
    let variants = lints::rung_variants(&supervisor_src);
    if variants.is_empty() {
        eprintln!("xtask lint: failed to extract Rung variants from {SUPERVISOR_PATH}");
        return ExitCode::from(2);
    }

    // One job per (rule, file); the file pass fans out across threads
    // and each worker reads, masks, and checks independently.
    let mut jobs: Vec<(&'static str, PathBuf, String)> = Vec::new();
    for (scope, rule) in [
        (&CONTROL_CRATES[..], lints::RULE_RAW_F64),
        (&UNWRAP_CRATES[..], lints::RULE_UNWRAP),
        (&RUNG_CRATES[..], lints::RULE_RUNG),
        (&CONTROL_CRATES[..], lints::RULE_SETPOINT),
        (&METRIC_CRATES[..], lints::RULE_METRIC),
        (&WAL_CRATES[..], lints::RULE_WAL),
        (&CHECKPOINT_CRATES[..], lints::RULE_CHECKPOINT),
        (&REACTOR_CRATES[..], lints::RULE_REACTOR),
        (&FLEET_CRATES[..], lints::RULE_ZONE_INDEX),
    ] {
        for dir in scope {
            for file in rust_files(&root.join(dir)) {
                let rel = file
                    .strip_prefix(&root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                jobs.push((rule, file, rel));
            }
        }
    }
    let nthreads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let chunk = jobs.len().div_ceil(nthreads.max(1)).max(1);
    let mut findings: Vec<Finding> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let variants = &variants;
        let mut handles = Vec::new();
        for slice in jobs.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut out: Vec<Finding> = Vec::new();
                let mut errs: Vec<String> = Vec::new();
                for (rule, file, rel) in slice {
                    let src = match fs::read_to_string(file) {
                        Ok(s) => s,
                        Err(e) => {
                            errs.push(format!("cannot read {rel}: {e}"));
                            continue;
                        }
                    };
                    let lines: Vec<&str> = src.lines().collect();
                    let mask = lints::test_line_mask(&lines);
                    let batch = match *rule {
                        lints::RULE_RAW_F64 => lints::check_raw_f64(rel, &lines, &mask),
                        lints::RULE_UNWRAP => lints::check_unwrap(rel, &lines, &mask),
                        lints::RULE_RUNG => lints::check_rung_matches(rel, &lines, &mask, variants),
                        lints::RULE_METRIC => lints::check_metric_names(rel, &lines, &mask),
                        lints::RULE_WAL => lints::check_wal_reads(rel, &lines, &mask),
                        lints::RULE_CHECKPOINT => lints::check_checkpoint_reads(rel, &lines, &mask),
                        lints::RULE_REACTOR => lints::check_reactor_blocking(rel, &lines, &mask),
                        lints::RULE_ZONE_INDEX => lints::check_zone_index(rel, &lines, &mask),
                        _ => lints::check_setpoint_literal(rel, &lines, &mask),
                    };
                    out.extend(batch);
                }
                (out, errs)
            }));
        }
        for h in handles {
            let (out, errs) = h.join().expect("lint worker thread panicked");
            findings.extend(out);
            errors.extend(errs);
        }
    });
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("xtask lint: {e}");
        }
        return ExitCode::from(2);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let active: Vec<&Finding> = findings.iter().filter(|f| !f.allowed).collect();
    let allowed_count = findings.len() - active.len();

    for f in &active {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    println!(
        "xtask lint: {} finding(s), {} allowlisted, rules: {}",
        active.len(),
        allowed_count,
        lints::ALL_RULES.join(", ")
    );

    let report = render_report(&findings, started.elapsed().as_secs_f64());
    let report_abs = if report_path.is_absolute() {
        report_path.clone()
    } else {
        root.join(&report_path)
    };
    if let Some(parent) = report_abs.parent() {
        if let Err(e) = fs::create_dir_all(parent) {
            eprintln!("xtask lint: cannot create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = fs::write(&report_abs, report) {
        eprintln!("xtask lint: cannot write {}: {e}", report_abs.display());
        return ExitCode::from(2);
    }
    println!("xtask lint: report written to {}", report_abs.display());

    if deny && !active.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Every rule must keep one true-positive and one true-negative
/// fixture, and each fixture must be exercised by a test
/// (`include_str!` in xtask sources). Loses a fixture, fails CI.
fn required_fixtures() -> Vec<(&'static str, String, String)> {
    let lint_stems = [
        (lints::RULE_RAW_F64, "raw_f64"),
        (lints::RULE_UNWRAP, "unwrap"),
        (lints::RULE_RUNG, "rung"),
        (lints::RULE_SETPOINT, "setpoint_literal"),
        (lints::RULE_METRIC, "metric_name"),
        (lints::RULE_WAL, "wal_read"),
        (lints::RULE_CHECKPOINT, "checkpoint_read"),
        (lints::RULE_REACTOR, "reactor_io"),
        (lints::RULE_ZONE_INDEX, "zone_index"),
    ];
    let analysis_stems = [
        (tesla_analysis::RULE_PANIC, "analysis/panic"),
        (tesla_analysis::RULE_ALLOC, "analysis/alloc"),
        (tesla_analysis::RULE_LOCK, "analysis/lock_order"),
        (tesla_analysis::RULE_BLOCKING, "analysis/blocking"),
    ];
    lint_stems
        .iter()
        .chain(analysis_stems.iter())
        .map(|(rule, stem)| {
            (
                *rule,
                format!("xtask/fixtures/{stem}_tp.rs"),
                format!("xtask/fixtures/{stem}_tn.rs"),
            )
        })
        .collect()
}

fn check_fixtures() -> ExitCode {
    let root = workspace_root();
    // All xtask sources, concatenated, to verify each fixture is
    // actually referenced by a test.
    let mut test_src = String::new();
    for file in rust_files(&root.join("xtask/src")) {
        if let Ok(s) = fs::read_to_string(&file) {
            test_src.push_str(&s);
        }
    }
    let mut problems = Vec::new();
    for (rule, tp, tn) in required_fixtures() {
        for path in [&tp, &tn] {
            if !root.join(path).is_file() {
                problems.push(format!("rule `{rule}`: missing fixture {path}"));
                continue;
            }
            let name = path.rsplit('/').next().unwrap_or(path);
            // include_str! paths in xtask are relative to src/, so the
            // file name is the stable thing to look for.
            if !test_src.contains(name) {
                problems.push(format!(
                    "rule `{rule}`: fixture {path} is not referenced by any xtask test"
                ));
            }
        }
    }
    for p in &problems {
        eprintln!("xtask check-fixtures: {p}");
    }
    println!(
        "xtask check-fixtures: {} rule(s) checked, {} problem(s)",
        required_fixtures().len(),
        problems.len()
    );
    if problems.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check_links() -> ExitCode {
    let root = workspace_root();
    let files = links::markdown_files(&root);
    let broken = links::check_links(&root);
    for b in &broken {
        println!("{}:{}: broken link `{}`", b.file, b.line, b.target);
    }
    println!(
        "xtask check-links: {} markdown file(s), {} broken link(s)",
        files.len(),
        broken.len()
    );
    if broken.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Hand-rolled JSON (the workspace has no serde): findings plus summary
/// counts and wall time, stable key order.
fn render_report(findings: &[Finding], wall_time_seconds: f64) -> String {
    let active = findings.iter().filter(|f| !f.allowed).count();
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowed\": {}, \"message\": \"{}\"}}{}\n",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            f.allowed,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"counts\": {{\"active\": {}, \"allowed\": {}, \"total\": {}}},\n  \
         \"wall_time_seconds\": {wall_time_seconds:.3}\n}}\n",
        active,
        findings.len() - active,
        findings.len()
    ));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_shape() {
        let findings = vec![Finding {
            rule: "no-unwrap-in-control-path",
            file: "crates/core/src/x.rs".to_string(),
            line: 3,
            message: "unwrap() in control path".to_string(),
            allowed: false,
        }];
        let json = render_report(&findings, 1.5);
        assert!(json.contains("\"rule\": \"no-unwrap-in-control-path\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"counts\": {\"active\": 1, \"allowed\": 0, \"total\": 1}"));
        assert!(json.contains("\"wall_time_seconds\": 1.500"));
    }

    /// Every required fixture exists and is referenced from a test —
    /// the same invariant `cargo xtask check-fixtures` enforces in CI.
    #[test]
    fn required_fixtures_present_and_referenced() {
        let root = workspace_root();
        let mut test_src = String::new();
        for file in rust_files(&root.join("xtask/src")) {
            test_src.push_str(&fs::read_to_string(&file).unwrap_or_default());
        }
        for (rule, tp, tn) in required_fixtures() {
            for path in [&tp, &tn] {
                assert!(root.join(path).is_file(), "rule `{rule}`: missing {path}");
                let name = path.rsplit('/').next().unwrap_or(path);
                assert!(
                    test_src.contains(name),
                    "rule `{rule}`: fixture {path} not referenced by any test"
                );
            }
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
