//! `cargo xtask analyze` — drives the tesla-analysis call-graph engine
//! over the workspace and gates findings against a committed baseline.
//!
//! The engine proves reachability properties from declared roots (see
//! [`workspace_rule_config`]): panic-freedom on the control path, no
//! steady-state heap allocation under `TeslaController::decide`, a
//! global lock acquisition order, and no blocking calls inside the
//! deadline-bounded `Supervisor::decide` path. Findings are gated by a
//! ratchet: `analysis-baseline.json` records the allowed active count
//! per rule, `--deny` fails when a count grows, and the baseline only
//! ever goes down (`--write-baseline` after a burn-down).

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tesla_analysis::{
    AnalysisFinding, LockClass, LockOrderConfig, RuleConfig, Workspace, RULE_ALLOC, RULE_BLOCKING,
    RULE_LOCK, RULE_PANIC,
};

/// The four interprocedural rules, in report order.
pub const ANALYSIS_RULES: [&str; 4] = [RULE_LOCK, RULE_ALLOC, RULE_BLOCKING, RULE_PANIC];

/// Default committed baseline path, relative to the workspace root.
pub const BASELINE_PATH: &str = "analysis-baseline.json";

/// Roots, lock classes, and the declared lock order for this workspace.
///
/// Root specs are `Type::method` (resolved against parsed impl blocks)
/// or bare fn names. Every root must resolve; a rename that orphans a
/// root fails the run rather than silently proving nothing.
pub fn workspace_rule_config() -> RuleConfig {
    RuleConfig {
        panic_roots: [
            // The per-minute decision path.
            "TeslaController::decide",
            "Supervisor::decide",
            "Supervisor::end_of_minute",
            // Checkpoint write/read.
            "Checkpoint::encode",
            "Checkpoint::decode",
            "CheckpointStore::write",
            "CheckpointStore::latest_valid",
            // WAL append/apply/recovery.
            "WalWriter::append",
            "recover",
            "Historian::apply_batch",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        alloc_roots: vec!["TeslaController::decide".to_string()],
        blocking_roots: vec![
            "Supervisor::decide".to_string(),
            // One reactor sweep: everything a shard thread runs per
            // connection per tick. Anything blocking reachable from here
            // stalls every other connection on the shard.
            "ReactorShard::poll_once".to_string(),
        ],
        lock: LockOrderConfig {
            classes: vec![
                LockClass {
                    name: "historian.shard".into(),
                    file_substr: "crates/historian/".into(),
                    recv_substr: "shard".into(),
                },
                LockClass {
                    name: "telemetry.store".into(),
                    file_substr: "crates/telemetry/".into(),
                    recv_substr: "inner".into(),
                },
                LockClass {
                    name: "obs.registry.shard".into(),
                    file_substr: "crates/obs/".into(),
                    recv_substr: "metrics".into(),
                },
                LockClass {
                    name: "obs.trace.ring".into(),
                    file_substr: "crates/obs/".into(),
                    recv_substr: "ring".into(),
                },
            ],
            // Outermost first. The telemetry facade wraps the
            // historian engine (TsdbStore methods hold `inner` while
            // delegating into Series/Historian reads), so its lock is
            // legitimately outer; nothing in the historian crate calls
            // back up into telemetry.
            order: vec![
                "telemetry.store".into(),
                "historian.shard".into(),
                "obs.registry.shard".into(),
                "obs.trace.ring".into(),
            ],
        },
    }
}

/// Scans `crates/*/src` into `(repo-relative path, content)` pairs.
pub fn workspace_sources(root: &std::path::Path) -> Result<Vec<(String, String)>, String> {
    let mut sources = Vec::new();
    for file in crate::rust_files(&root.join("crates")) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        // Developer tooling and the measurement harness are not
        // control-plane code: the analysis engine's fns are named after
        // the patterns they match, and the bench harness replays
        // recorded frames offline. Scanning either only adds
        // name-collision edges into the graph.
        if rel.starts_with("crates/analysis/") || rel.starts_with("crates/bench/") {
            continue;
        }
        let content = fs::read_to_string(&file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        sources.push((rel, content));
    }
    Ok(sources)
}

/// Entry point for `cargo xtask analyze`.
pub fn run(args: &[String]) -> ExitCode {
    let mut deny = false;
    let mut write_baseline = false;
    let mut report_path = PathBuf::from("target/analysis-report.json");
    let mut baseline_path = PathBuf::from(BASELINE_PATH);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--write-baseline" => write_baseline = true,
            "--report" => match it.next() {
                Some(p) => report_path = PathBuf::from(p),
                None => {
                    eprintln!("xtask analyze: --report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => {
                    eprintln!("xtask analyze: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let root = crate::workspace_root();
    let sources = match workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let n_files = sources.len();
    let ws = Workspace::from_sources(sources);
    let cfg = workspace_rule_config();

    // A root that no longer resolves proves nothing — fail loudly.
    let mut unresolved = Vec::new();
    for spec in cfg
        .panic_roots
        .iter()
        .chain(&cfg.alloc_roots)
        .chain(&cfg.blocking_roots)
    {
        if ws.resolve_root(spec).is_empty() {
            unresolved.push(spec.clone());
        }
    }
    if !unresolved.is_empty() {
        eprintln!(
            "xtask analyze: root(s) failed to resolve (renamed?): {}",
            unresolved.join(", ")
        );
        return ExitCode::from(2);
    }

    let findings = ws.analyze(&cfg);
    let wall = started.elapsed().as_secs_f64();

    let mut active: BTreeMap<&str, usize> = BTreeMap::new();
    let mut allowed: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in ANALYSIS_RULES {
        active.insert(rule, 0);
        allowed.insert(rule, 0);
    }
    for f in &findings {
        *if f.allowed {
            allowed.entry(f.rule)
        } else {
            active.entry(f.rule)
        }
        .or_insert(0) += 1;
    }

    for f in findings.iter().filter(|f| !f.allowed) {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        println!("    witness: {}", f.witness);
    }
    let total_active: usize = active.values().sum();
    let total_allowed: usize = allowed.values().sum();
    println!(
        "xtask analyze: {n_files} file(s), {} fn(s), {total_active} active finding(s), \
         {total_allowed} allowlisted, {wall:.2}s",
        ws.graph.fns.len()
    );

    // Report.
    let report = render_analysis_report(&findings, &active, &allowed, wall);
    let report_abs = if report_path.is_absolute() {
        report_path.clone()
    } else {
        root.join(&report_path)
    };
    if let Some(parent) = report_abs.parent() {
        if let Err(e) = fs::create_dir_all(parent) {
            eprintln!("xtask analyze: cannot create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = fs::write(&report_abs, report) {
        eprintln!("xtask analyze: cannot write {}: {e}", report_abs.display());
        return ExitCode::from(2);
    }
    println!("xtask analyze: report written to {}", report_abs.display());

    // Baseline ratchet.
    let baseline_abs = if baseline_path.is_absolute() {
        baseline_path.clone()
    } else {
        root.join(&baseline_path)
    };
    if write_baseline {
        let body = render_baseline(&active);
        if let Err(e) = fs::write(&baseline_abs, body) {
            eprintln!(
                "xtask analyze: cannot write {}: {e}",
                baseline_abs.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "xtask analyze: baseline written to {}",
            baseline_abs.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match fs::read_to_string(&baseline_abs) {
        Ok(s) => parse_baseline(&s),
        Err(_) => {
            eprintln!(
                "xtask analyze: no baseline at {} (run with --write-baseline to create one); \
                 treating all rules as baseline 0",
                baseline_abs.display()
            );
            BTreeMap::new()
        }
    };
    let mut regressed = false;
    for rule in ANALYSIS_RULES {
        let now = *active.get(rule).unwrap_or(&0);
        let base = *baseline.get(rule).unwrap_or(&0);
        if now > base {
            eprintln!(
                "xtask analyze: RATCHET — rule `{rule}` has {now} active finding(s), \
                 baseline allows {base}"
            );
            regressed = true;
        } else if now < base {
            println!(
                "xtask analyze: rule `{rule}` improved to {now} (baseline {base}); \
                 ratchet down with --write-baseline"
            );
        }
    }
    if deny && regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Hand-rolled JSON report (the workspace has no serde).
pub fn render_analysis_report(
    findings: &[AnalysisFinding],
    active: &BTreeMap<&str, usize>,
    allowed: &BTreeMap<&str, usize>,
    wall_time_seconds: f64,
) -> String {
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowed\": {}, \
             \"message\": \"{}\", \"witness\": \"{}\"}}{}\n",
            crate::json_escape(f.rule),
            crate::json_escape(&f.file),
            f.line,
            f.allowed,
            crate::json_escape(&f.message),
            crate::json_escape(&f.witness),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"counts\": {\n");
    let rules: Vec<&&str> = active.keys().collect();
    for (i, rule) in rules.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"active\": {}, \"allowed\": {}}}{}\n",
            crate::json_escape(rule),
            active.get(**rule).unwrap_or(&0),
            allowed.get(**rule).unwrap_or(&0),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  }},\n  \"wall_time_seconds\": {wall_time_seconds:.3}\n}}\n"
    ));
    s
}

/// Renders the committed baseline: a flat rule -> active-count map.
pub fn render_baseline(active: &BTreeMap<&str, usize>) -> String {
    let mut s = String::from("{\n");
    let rules: Vec<&&str> = active.keys().collect();
    for (i, rule) in rules.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {}{}\n",
            rule,
            active.get(**rule).unwrap_or(&0),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

/// Parses the flat `"rule": count` baseline format. Tolerant of
/// whitespace; ignores anything that is not a known quoted key followed
/// by an integer.
pub fn parse_baseline(s: &str) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for rule in ANALYSIS_RULES {
        let needle = format!("\"{rule}\"");
        if let Some(pos) = s.find(&needle) {
            let rest = &s[pos + needle.len()..];
            let rest = rest.trim_start().strip_prefix(':').unwrap_or(rest);
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(n) = digits.parse::<usize>() {
                out.insert(rule, n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_analysis::Workspace;

    fn fixture_ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
        )
    }

    /// Roots used by the fixture pairs: the fixtures name their entry
    /// point `decide` (panic/alloc) or `step` (blocking) and use the
    /// same lock receivers the workspace config declares.
    fn fixture_cfg() -> RuleConfig {
        RuleConfig {
            panic_roots: vec!["decide".into()],
            alloc_roots: vec!["decide".into()],
            blocking_roots: vec!["step".into()],
            lock: LockOrderConfig {
                classes: vec![
                    LockClass {
                        name: "historian.shard".into(),
                        file_substr: "".into(),
                        recv_substr: "shard".into(),
                    },
                    LockClass {
                        name: "obs.registry.shard".into(),
                        file_substr: "".into(),
                        recv_substr: "metrics".into(),
                    },
                ],
                order: vec!["historian.shard".into(), "obs.registry.shard".into()],
            },
        }
    }

    const PANIC_TP: &str = include_str!("../fixtures/analysis/panic_tp.rs");
    const PANIC_TN: &str = include_str!("../fixtures/analysis/panic_tn.rs");
    const ALLOC_TP: &str = include_str!("../fixtures/analysis/alloc_tp.rs");
    const ALLOC_TN: &str = include_str!("../fixtures/analysis/alloc_tn.rs");
    const LOCK_TP: &str = include_str!("../fixtures/analysis/lock_order_tp.rs");
    const LOCK_TN: &str = include_str!("../fixtures/analysis/lock_order_tn.rs");
    const BLOCKING_TP: &str = include_str!("../fixtures/analysis/blocking_tp.rs");
    const BLOCKING_TN: &str = include_str!("../fixtures/analysis/blocking_tn.rs");

    fn active_for(src: &str, rule: &str) -> Vec<AnalysisFinding> {
        let ws = fixture_ws(&[("fixture.rs", src)]);
        ws.analyze(&fixture_cfg())
            .into_iter()
            .filter(|f| f.rule == rule && !f.allowed)
            .collect()
    }

    #[test]
    fn panic_fixture_pair() {
        let tp = active_for(PANIC_TP, RULE_PANIC);
        assert!(!tp.is_empty(), "TP fixture must produce findings");
        assert!(
            tp.iter().any(|f| f.witness.contains("decide ->")),
            "witness must start at the root: {tp:?}"
        );
        let tn = active_for(PANIC_TN, RULE_PANIC);
        assert!(tn.is_empty(), "TN fixture must be clean, got: {tn:?}");
    }

    #[test]
    fn alloc_fixture_pair() {
        let tp = active_for(ALLOC_TP, RULE_ALLOC);
        assert!(!tp.is_empty(), "TP fixture must produce findings");
        let tn = active_for(ALLOC_TN, RULE_ALLOC);
        assert!(tn.is_empty(), "TN fixture must be clean, got: {tn:?}");
    }

    #[test]
    fn lock_order_fixture_pair() {
        let tp = active_for(LOCK_TP, RULE_LOCK);
        assert!(!tp.is_empty(), "TP fixture must produce findings");
        let tn = active_for(LOCK_TN, RULE_LOCK);
        assert!(tn.is_empty(), "TN fixture must be clean, got: {tn:?}");
    }

    #[test]
    fn blocking_fixture_pair() {
        let tp = active_for(BLOCKING_TP, RULE_BLOCKING);
        assert!(!tp.is_empty(), "TP fixture must produce findings");
        let tn = active_for(BLOCKING_TN, RULE_BLOCKING);
        assert!(tn.is_empty(), "TN fixture must be clean, got: {tn:?}");
    }

    /// The acceptance scenario: a transitive `unwrap()` three calls
    /// under `decide()` is caught with a full per-hop witness chain.
    #[test]
    fn transitive_unwrap_under_decide_has_full_witness() {
        let ws = fixture_ws(&[
            (
                "crates/core/src/tesla.rs",
                "pub struct TeslaController;\n\
                 impl TeslaController {\n\
                     pub fn decide(&mut self) { plan_step(); }\n\
                 }\n",
            ),
            (
                "crates/core/src/plan.rs",
                "pub fn plan_step() { pick_candidate(); }\n",
            ),
            (
                "crates/bo/src/pick.rs",
                "pub fn pick_candidate() {\n\
                     let best: Option<f64> = None;\n\
                     best.unwrap();\n\
                 }\n",
            ),
        ]);
        let cfg = RuleConfig {
            panic_roots: vec!["TeslaController::decide".into()],
            ..RuleConfig::default()
        };
        let findings = ws.analyze(&cfg);
        let f = findings
            .iter()
            .find(|f| f.rule == RULE_PANIC && f.message.contains("unwrap"))
            .expect("transitive unwrap must be caught");
        assert_eq!(f.file, "crates/bo/src/pick.rs");
        assert_eq!(f.line, 3);
        assert!(
            f.witness.contains(
                "TeslaController::decide -> plan_step [crates/core/src/tesla.rs:3] \
                 -> pick_candidate [crates/core/src/plan.rs:1] -> .unwrap() \
                 [crates/bo/src/pick.rs:3]"
            ),
            "unexpected witness: {}",
            f.witness
        );
    }

    /// The call graph over the real workspace resolves the decision
    /// chain the paper's pipeline depends on:
    /// decide -> optimize_batched -> posterior.
    #[test]
    fn real_workspace_resolves_decide_chain() {
        let root = crate::workspace_root();
        let sources = workspace_sources(&root).expect("workspace sources readable");
        let ws = Workspace::from_sources(sources);
        let g = &ws.graph;
        let decide = *g
            .by_qualified
            .get("TeslaController::decide")
            .and_then(|v| v.first())
            .expect("TeslaController::decide parsed");
        let opt = *g
            .by_qualified
            .get("BayesianOptimizer::optimize_batched")
            .and_then(|v| v.first())
            .expect("BayesianOptimizer::optimize_batched parsed");
        let post = *g
            .by_qualified
            .get("FixedNoiseGp::posterior")
            .and_then(|v| v.first())
            .expect("FixedNoiseGp::posterior parsed");
        let callees_of = |f: usize| -> Vec<usize> {
            g.fns[f]
                .edges
                .iter()
                .flat_map(|(_, ids)| ids.iter().copied())
                .collect()
        };
        assert!(
            callees_of(decide).contains(&opt),
            "decide must call optimize_batched"
        );
        assert!(
            callees_of(opt).contains(&post),
            "optimize_batched must call posterior"
        );
    }

    /// Every configured root resolves in the real workspace; a rename
    /// that orphans a root must fail the analyze run.
    #[test]
    fn real_workspace_roots_all_resolve() {
        let root = crate::workspace_root();
        let sources = workspace_sources(&root).expect("workspace sources readable");
        let ws = Workspace::from_sources(sources);
        let cfg = workspace_rule_config();
        for spec in cfg
            .panic_roots
            .iter()
            .chain(&cfg.alloc_roots)
            .chain(&cfg.blocking_roots)
        {
            assert!(
                !ws.resolve_root(spec).is_empty(),
                "root `{spec}` does not resolve"
            );
        }
    }

    #[test]
    fn baseline_round_trip() {
        let mut active: BTreeMap<&str, usize> = BTreeMap::new();
        for rule in ANALYSIS_RULES {
            active.insert(rule, 0);
        }
        active.insert(RULE_PANIC, 3);
        let body = render_baseline(&active);
        let parsed = parse_baseline(&body);
        assert_eq!(parsed.get(RULE_PANIC), Some(&3));
        assert_eq!(parsed.get(RULE_LOCK), Some(&0));
    }

    #[test]
    fn report_shape_includes_witness_and_wall_time() {
        let findings = vec![AnalysisFinding {
            rule: RULE_PANIC,
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: ".unwrap()".into(),
            witness: "decide -> x [crates/core/src/x.rs:7]".into(),
            allowed: false,
        }];
        let mut active: BTreeMap<&str, usize> = BTreeMap::new();
        let mut allowed: BTreeMap<&str, usize> = BTreeMap::new();
        for rule in ANALYSIS_RULES {
            active.insert(rule, 0);
            allowed.insert(rule, 0);
        }
        active.insert(RULE_PANIC, 1);
        let json = render_analysis_report(&findings, &active, &allowed, 0.25);
        assert!(json.contains("\"witness\": \"decide -> x [crates/core/src/x.rs:7]\""));
        assert!(json.contains("\"wall_time_seconds\": 0.250"));
        assert!(json.contains(&format!(
            "\"{RULE_PANIC}\": {{\"active\": 1, \"allowed\": 0}}"
        )));
    }
}
