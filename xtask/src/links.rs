//! Relative-link checker for the repo's markdown docs.
//!
//! `cargo xtask check-links` walks every tracked `.md` file (skipping
//! build output and vendored sources), extracts inline markdown links,
//! and verifies that each relative target exists on disk. External
//! schemes (`http://`, `https://`, `mailto:`) and pure in-page anchors
//! (`#…`) are skipped — the checker guards against broken cross-file
//! references, which is what rot fastest as files move.

use std::path::{Path, PathBuf};

/// One broken link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokenLink {
    /// Repo-relative path of the markdown file.
    pub file: String,
    /// 1-based line number of the link.
    pub line: usize,
    /// The raw link target as written.
    pub target: String,
}

/// Directories never descended into when collecting markdown files.
const SKIP_DIRS: [&str; 6] = [
    ".git",
    "target",
    "vendor",
    "bench_results",
    "node_modules",
    ".claude",
];

/// Recursively collects `.md` files under `root`, sorted for stable
/// output.
pub fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out);
            }
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
}

/// Extracts inline-link targets `[text](target)` from one line.
/// Reference-style definitions and autolinks are out of scope. Images
/// (`![alt](target)`) are included — a missing figure is a broken link
/// too.
pub fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Find `](` — the seam of an inline link whose label has closed.
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            let mut depth = 1i32;
            let mut j = start;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                let target = line[start..j - 1].trim();
                // `[x](target "title")` → drop the title part.
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    out.push(target.to_string());
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// True when the target is out of scope for the file-existence check.
pub fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

/// Checks all relative links in the markdown files under `root`.
pub fn check_links(root: &Path) -> Vec<BrokenLink> {
    let mut broken = Vec::new();
    for file in markdown_files(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        let dir = file.parent().unwrap_or(root);
        let mut in_fence = false;
        for (ln, line) in src.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in link_targets(line) {
                if is_external(&target) {
                    continue;
                }
                // Strip an in-page fragment: `FILE.md#section` → `FILE.md`.
                let path_part = target.split('#').next().unwrap_or("");
                if path_part.is_empty() {
                    continue;
                }
                let resolved = if let Some(abs) = path_part.strip_prefix('/') {
                    root.join(abs)
                } else {
                    dir.join(path_part)
                };
                if !resolved.exists() {
                    broken.push(BrokenLink {
                        file: rel.clone(),
                        line: ln + 1,
                        target,
                    });
                }
            }
        }
    }
    broken
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_links() {
        let line = "see [docs](docs/OBSERVABILITY.md) and ![fig](img/a.png \"t\") here";
        assert_eq!(
            link_targets(line),
            vec!["docs/OBSERVABILITY.md", "img/a.png"]
        );
    }

    #[test]
    fn handles_nested_parens_and_no_link() {
        assert_eq!(
            link_targets("[w](https://x.test/a_(b))"),
            vec!["https://x.test/a_(b)"]
        );
        assert!(link_targets("plain text (parens) [brackets]").is_empty());
    }

    #[test]
    fn external_targets_are_skipped() {
        assert!(is_external("https://example.test/x"));
        assert!(is_external("http://example.test"));
        assert!(is_external("mailto:a@b.test"));
        assert!(is_external("#section"));
        assert!(!is_external("docs/OBSERVABILITY.md"));
        assert!(!is_external("../README.md"));
    }

    #[test]
    fn finds_broken_relative_link() {
        let dir = std::env::temp_dir().join("xtask-links-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ok.md"), "target\n").unwrap();
        std::fs::write(
            dir.join("index.md"),
            "[good](ok.md)\n[frag](ok.md#sec)\n[bad](missing.md)\n\
             ```\n[in fence](also-missing.md)\n```\n[web](https://example.test)\n",
        )
        .unwrap();
        let broken = check_links(&dir);
        assert_eq!(broken.len(), 1, "{broken:?}");
        assert_eq!(broken[0].target, "missing.md");
        assert_eq!(broken[0].line, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
