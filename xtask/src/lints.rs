//! Line-based lint rules for the TESLA control stack.
//!
//! Deliberately not a real parser: every rule works on source lines plus
//! a small amount of brace/paren counting, so the driver builds with no
//! external dependencies (no `syn`, no `regex`, no nightly). The rules
//! are heuristics tuned to this workspace's idiom; the escape hatch for
//! a deliberate exception is an allowlist comment on the finding line or
//! the line directly above it:
//!
//! ```text
//! // lint:allow(<rule-name>): optional reason
//! ```

/// One lint finding, before allowlist filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-unwrap-in-control-path`.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// True when an allowlist comment suppresses the finding.
    pub allowed: bool,
}

pub const RULE_RAW_F64: &str = "no-raw-f64-in-public-api";
pub const RULE_UNWRAP: &str = "no-unwrap-in-control-path";
pub const RULE_RUNG: &str = "supervisor-transition-exhaustive";
pub const RULE_SETPOINT: &str = "bounded-setpoint-literal";
pub const RULE_METRIC: &str = "metric-name-format";
pub const RULE_WAL: &str = "no-unchecked-wal-read";
pub const RULE_CHECKPOINT: &str = "no-unframed-checkpoint-read";
pub const RULE_REACTOR: &str = "no-blocking-io-in-reactor";
pub const RULE_ZONE_INDEX: &str = "no-raw-zone-index-in-public-api";

pub const ALL_RULES: [&str; 9] = [
    RULE_RAW_F64,
    RULE_UNWRAP,
    RULE_RUNG,
    RULE_SETPOINT,
    RULE_METRIC,
    RULE_WAL,
    RULE_CHECKPOINT,
    RULE_REACTOR,
    RULE_ZONE_INDEX,
];

/// Identifier words that mark an item as temperature/power-bearing for
/// `no-raw-f64-in-public-api`. Matched as prefixes of the
/// underscore-separated words of each identifier, case-insensitively
/// (`supply_temp_c` -> ["supply", "temp", "c"] -> matches "temp").
const QUANTITY_FRAGMENTS: [&str; 10] = [
    "temp", "celsius", "setpoint", "power", "kw", "watt", "energy", "degc", "joule", "aisle",
];

/// Marks the lines that belong to `#[cfg(test)]` modules so control-path
/// rules skip test code. Returns one flag per line (true = test code).
pub fn test_line_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Walk the item header (further attributes, doc comments, the
        // item line itself) up to its opening `{` — judged on
        // comment-stripped code, so a brace inside a comment cannot
        // derail the scan — or up to a `;` for bodyless items like
        // `#[cfg(test)] use …;`, where only the item itself is masked.
        let mut j = i;
        let mut opened = false;
        while j < lines.len() {
            mask[j] = true;
            let code = strip_line_comment(lines[j]);
            if code.contains('{') {
                opened = true;
                break;
            }
            if code.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        if !opened {
            i = j + 1;
            continue;
        }
        // Consume the block body by brace counting (the `{` line may
        // also share the attribute, e.g. `#[cfg(test)] mod tests {`).
        let mut depth = 0i32;
        while j < lines.len() {
            mask[j] = true;
            depth += brace_delta(lines[j]);
            if depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Net `{`/`}` balance of a line, ignoring ones inside `//` comments.
fn brace_delta(line: &str) -> i32 {
    let code = strip_line_comment(line);
    let mut d = 0i32;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Everything before a `//` comment marker. Not string-literal aware,
/// which is fine for this codebase's idiom (no `//` inside literals on
/// lines these rules care about).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(ix) => &line[..ix],
        None => line,
    }
}

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//")
        || t.starts_with("/*")
        || t.starts_with("* ")
        || t == "*"
        || t.starts_with("*/")
}

/// True when `line` (or the line above it) carries `lint:allow(<rule>)`.
pub fn is_allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    if lines[idx].contains(&marker) {
        return true;
    }
    idx > 0 && lines[idx - 1].trim_start().starts_with("//") && lines[idx - 1].contains(&marker)
}

/// Splits a line into identifier-ish tokens, lowercased, then into
/// underscore-separated words.
fn identifier_words(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    for token in text.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        for word in token.split('_') {
            if !word.is_empty() {
                words.push(word.to_ascii_lowercase());
            }
        }
    }
    words
}

fn has_quantity_word(text: &str) -> bool {
    identifier_words(text)
        .iter()
        .any(|w| QUANTITY_FRAGMENTS.iter().any(|f| w.starts_with(f)))
}

/// Rule `no-raw-f64-in-public-api`: `pub fn` signatures and `pub` struct
/// fields in the control crates whose names talk about temperature or
/// power must not expose raw `f64` — use `tesla-units` newtypes.
pub fn check_raw_f64(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_sig = false;
    let mut sig_named_quantity = false;
    let mut sig_allowed = false;
    let mut paren_depth = 0i32;

    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        let trimmed = code.trim_start();

        if !in_sig {
            if let Some(rest) = trimmed.strip_prefix("pub fn ") {
                in_sig = true;
                paren_depth = 0;
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                sig_named_quantity = has_quantity_word(&name);
                // An allow on the `pub fn` line (or directly above it)
                // covers the whole multi-line signature.
                sig_allowed = is_allowed(lines, i, RULE_RAW_F64);
            }
        }

        if in_sig {
            if code.contains("f64") && (sig_named_quantity || has_quantity_word(code)) {
                findings.push(Finding {
                    rule: RULE_RAW_F64,
                    file: file.to_string(),
                    line: i + 1,
                    message: "raw f64 in public temperature/power signature; \
                              use a tesla-units newtype"
                        .to_string(),
                    allowed: sig_allowed || is_allowed(lines, i, RULE_RAW_F64),
                });
            }
            for c in code.chars() {
                match c {
                    '(' => paren_depth += 1,
                    ')' => paren_depth -= 1,
                    _ => {}
                }
            }
            if paren_depth <= 0 && (code.contains('{') || code.trim_end().ends_with(';')) {
                in_sig = false;
            }
            continue;
        }

        // `pub` struct/enum fields (skip other `pub` items).
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            let keyword = rest.split_whitespace().next().unwrap_or("");
            let is_item = matches!(
                keyword,
                "fn" | "struct"
                    | "enum"
                    | "mod"
                    | "use"
                    | "const"
                    | "static"
                    | "type"
                    | "trait"
                    | "impl"
                    | "crate"
                    | "unsafe"
                    | "async"
            );
            if !is_item && rest.contains(':') && code.contains("f64") {
                let field_name = rest.split(':').next().unwrap_or("");
                if has_quantity_word(field_name) {
                    findings.push(Finding {
                        rule: RULE_RAW_F64,
                        file: file.to_string(),
                        line: i + 1,
                        message: format!(
                            "public field `{}` holds a temperature/power quantity as raw f64; \
                             use a tesla-units newtype",
                            field_name.trim()
                        ),
                        allowed: is_allowed(lines, i, RULE_RAW_F64),
                    });
                }
            }
        }
    }
    findings
}

/// True when an identifier word is exactly `zone` — the singular form
/// used when addressing one zone. Plural counts (`zones`, `n_zones`)
/// and the newtype's own name (`ZoneId` lowercases to "zoneid") stay
/// out of scope: a fleet size is a quantity, not an address.
fn names_zone(text: &str) -> bool {
    identifier_words(text).iter().any(|w| w == "zone")
}

/// Rule `no-raw-zone-index-in-public-api`: `pub fn` signatures and
/// `pub` struct fields in the fleet crate that address a zone must
/// carry `tesla_units::ZoneId`, never a raw `usize` index — a raw
/// index silently re-keys across topologies, while the newtype keeps
/// zone addressing type-checked end to end (historian prefixes, TLP
/// `STATUS z<i>`, coordinator decisions).
pub fn check_zone_index(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_sig = false;
    let mut sig_named_zone = false;
    let mut sig_allowed = false;
    let mut paren_depth = 0i32;

    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        let trimmed = code.trim_start();

        if !in_sig {
            if let Some(rest) = trimmed.strip_prefix("pub fn ") {
                in_sig = true;
                paren_depth = 0;
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                sig_named_zone = names_zone(&name);
                // An allow on the `pub fn` line (or directly above it)
                // covers the whole multi-line signature.
                sig_allowed = is_allowed(lines, i, RULE_ZONE_INDEX);
            }
        }

        if in_sig {
            if code.contains("usize") && (sig_named_zone || names_zone(code)) {
                findings.push(Finding {
                    rule: RULE_ZONE_INDEX,
                    file: file.to_string(),
                    line: i + 1,
                    message: "raw usize zone index in public signature; \
                              use tesla_units::ZoneId"
                        .to_string(),
                    allowed: sig_allowed || is_allowed(lines, i, RULE_ZONE_INDEX),
                });
            }
            for c in code.chars() {
                match c {
                    '(' => paren_depth += 1,
                    ')' => paren_depth -= 1,
                    _ => {}
                }
            }
            if paren_depth <= 0 && (code.contains('{') || code.trim_end().ends_with(';')) {
                in_sig = false;
            }
            continue;
        }

        // `pub` struct/enum fields (skip other `pub` items).
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            let keyword = rest.split_whitespace().next().unwrap_or("");
            let is_item = matches!(
                keyword,
                "fn" | "struct"
                    | "enum"
                    | "mod"
                    | "use"
                    | "const"
                    | "static"
                    | "type"
                    | "trait"
                    | "impl"
                    | "crate"
                    | "unsafe"
                    | "async"
            );
            if !is_item && rest.contains(':') && code.contains("usize") {
                let field_name = rest.split(':').next().unwrap_or("");
                if names_zone(field_name) {
                    findings.push(Finding {
                        rule: RULE_ZONE_INDEX,
                        file: file.to_string(),
                        line: i + 1,
                        message: format!(
                            "public field `{}` addresses a zone by raw usize index; \
                             use tesla_units::ZoneId",
                            field_name.trim()
                        ),
                        allowed: is_allowed(lines, i, RULE_ZONE_INDEX),
                    });
                }
            }
        }
    }
    findings
}

/// Rule `no-unwrap-in-control-path`: `.unwrap()` is forbidden in
/// non-test code of the control crates — propagate with `?`, handle, or
/// `expect` with context (and an allowlist comment explaining why the
/// invariant holds).
pub fn check_unwrap(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        if code.contains(".unwrap()") {
            findings.push(Finding {
                rule: RULE_UNWRAP,
                file: file.to_string(),
                line: i + 1,
                message: "unwrap() in control path; propagate the error or use \
                          expect with context"
                    .to_string(),
                allowed: is_allowed(lines, i, RULE_UNWRAP),
            });
        }
    }
    findings
}

/// Rule `supervisor-transition-exhaustive`: every `match` whose arms
/// pattern-match `Rung::` variants must name every rung and must not
/// use a `_` wildcard arm — adding a ladder rung must break the build
/// until every transition site decides what to do with it.
pub fn check_rung_matches(
    file: &str,
    lines: &[&str],
    mask: &[bool],
    variants: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let code = strip_line_comment(lines[i]);
        if mask[i] || is_comment_line(lines[i]) || !code.contains("match ") || !code.contains('{') {
            i += 1;
            continue;
        }
        // Capture the match block by brace counting.
        let start = i;
        let mut depth = 0i32;
        let mut end = i;
        for (j, l) in lines.iter().enumerate().skip(i) {
            depth += brace_delta(l);
            if depth <= 0 {
                end = j;
                break;
            }
            end = j;
        }
        let block: Vec<&str> = lines[start..=end].to_vec();
        // Only matches that pattern-match Rung variants in arm position.
        let is_rung_match = block.iter().skip(1).any(|l| {
            let c = strip_line_comment(l);
            c.contains("Rung::") && c.contains("=>") && {
                let pat = c.split("=>").next().unwrap_or("");
                pat.contains("Rung::")
            }
        });
        if is_rung_match {
            for (j, l) in block.iter().enumerate().skip(1) {
                let c = strip_line_comment(l);
                let t = c.trim_start();
                if t.starts_with("_ =>") || t.starts_with("_ |") || c.contains("| _ ") {
                    findings.push(Finding {
                        rule: RULE_RUNG,
                        file: file.to_string(),
                        line: start + j + 1,
                        message: "wildcard arm in Rung match; name every rung so new \
                                  rungs force a decision here"
                            .to_string(),
                        allowed: is_allowed(lines, start + j, RULE_RUNG),
                    });
                }
            }
            let body = block.join("\n");
            for v in variants {
                if !body.contains(&format!("Rung::{v}")) {
                    findings.push(Finding {
                        rule: RULE_RUNG,
                        file: file.to_string(),
                        line: start + 1,
                        message: format!("Rung match does not cover `Rung::{v}`"),
                        allowed: is_allowed(lines, start, RULE_RUNG),
                    });
                }
            }
        }
        i = end.max(i) + 1;
    }
    findings
}

/// Rule `bounded-setpoint-literal`: a numeric set-point literal wrapped
/// straight into `Celsius::new(...)` bypasses the paper's operating
/// envelope; go through `tesla_units::SETPOINT_RANGE` (`.clamp`,
/// `.check`, or its `min()`/`max()` endpoints) instead.
pub fn check_setpoint_literal(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        if code.contains("SETPOINT_RANGE") {
            continue;
        }
        let names_setpoint = identifier_words(code)
            .iter()
            .any(|w| w.starts_with("setpoint"));
        if !names_setpoint {
            continue;
        }
        if has_numeric_celsius_literal(code) {
            findings.push(Finding {
                rule: RULE_SETPOINT,
                file: file.to_string(),
                line: i + 1,
                message: "numeric set-point literal; validate through \
                          tesla_units::SETPOINT_RANGE"
                    .to_string(),
                allowed: is_allowed(lines, i, RULE_SETPOINT),
            });
        }
    }
    findings
}

/// True when the line contains `Celsius::new(<numeric literal>`.
fn has_numeric_celsius_literal(code: &str) -> bool {
    let mut rest = code;
    while let Some(ix) = rest.find("Celsius::new(") {
        let after = &rest[ix + "Celsius::new(".len()..];
        let after = after.trim_start();
        let after = after.strip_prefix('-').unwrap_or(after);
        if after.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
        rest = &rest[ix + "Celsius::new(".len()..];
    }
    false
}

/// Unit suffixes accepted as the final word of gauge/histogram names.
/// Mirrors the `tesla-units` quantities plus the dimensionless ones the
/// exporters document (see docs/OBSERVABILITY.md "Naming convention").
const UNIT_SUFFIXES: [&str; 10] = [
    "seconds",
    "celsius",
    "kwh",
    "kw",
    "iterations",
    "index",
    "ratio",
    "bytes",
    "connections",
    "samples",
];

/// The tesla-obs constructor spellings that take a metric-name string
/// literal as their first argument, and the instrument kind each one
/// creates.
const METRIC_CONSTRUCTORS: [(&str, &str); 6] = [
    ("counter!(", "counter"),
    ("gauge!(", "gauge"),
    ("histogram!(", "histogram"),
    (".counter(", "counter"),
    (".gauge(", "gauge"),
    (".histogram(", "histogram"),
];

/// Rule `metric-name-format`: metric names passed to the tesla-obs
/// constructors must be snake_case; counters must end in `_total`;
/// gauges and histograms must end in a known unit suffix so dashboards
/// never have to guess units. Non-literal names (variables) are out of
/// scope for this line-based rule.
pub fn check_metric_names(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        for (pattern, kind) in METRIC_CONSTRUCTORS {
            let mut rest = code;
            while let Some(ix) = rest.find(pattern) {
                let after = rest[ix + pattern.len()..].trim_start();
                rest = &rest[ix + pattern.len()..];
                let Some(literal) = after.strip_prefix('"') else {
                    continue; // name is not a string literal
                };
                let Some(name) = literal.split('"').next() else {
                    continue;
                };
                if let Some(problem) = metric_name_problem(name, kind) {
                    findings.push(Finding {
                        rule: RULE_METRIC,
                        file: file.to_string(),
                        line: i + 1,
                        message: format!("{kind} `{name}`: {problem}"),
                        allowed: is_allowed(lines, i, RULE_METRIC),
                    });
                }
            }
        }
    }
    findings
}

/// Why `name` violates the naming convention for `kind`, if it does.
fn metric_name_problem(name: &str, kind: &str) -> Option<String> {
    let snake = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.contains("__")
        && !name.ends_with('_');
    if !snake {
        return Some("not snake_case (lowercase words joined by single underscores)".to_string());
    }
    let last = name.rsplit('_').next().unwrap_or("");
    match kind {
        "counter" => (last != "total").then(|| "counter names must end in `_total`".to_string()),
        _ => (!UNIT_SUFFIXES.contains(&last)).then(|| {
            format!(
                "{kind} names must end in a unit suffix ({})",
                UNIT_SUFFIXES.map(|s| format!("_{s}")).join(", ")
            )
        }),
    }
}

/// Byte-level deserialization spellings that must not appear outside a
/// CRC-checked framed reader. `.read(&` (a buffer read) deliberately
/// excludes `OpenOptions::read(true)`. Shared by both framed-read
/// rules: WAL records and checkpoints use the same magic + version +
/// length + CRC framing.
const FRAMED_READ_PATTERNS: [&str; 5] = [
    "from_le_bytes(",
    "from_be_bytes(",
    ".read_exact(",
    ".read_to_end(",
    ".read(&",
];

/// One framed-read rule instance: which rule name it reports under,
/// what artifact it protects, and the blessed reader to route through.
pub struct FramedReadSpec {
    /// Rule identifier reported in findings and matched by allowlists.
    pub rule: &'static str,
    /// Artifact description used in the message ("WAL frame" etc.).
    pub subject: &'static str,
    /// The CRC-checked reader every byte must flow through.
    pub reader: &'static str,
}

/// `no-unchecked-wal-read`: every WAL byte deserialized in the
/// historian must flow through the CRC-checked frame reader, so a torn
/// or bit-flipped record can never be half-applied.
pub const WAL_READ_SPEC: FramedReadSpec = FramedReadSpec {
    rule: RULE_WAL,
    subject: "WAL frame",
    reader: "wal::read_frame",
};

/// `no-unframed-checkpoint-read`: every checkpoint byte deserialized in
/// the control-plane crate must flow through the CRC-checked reader, so
/// a torn checkpoint can never be half-restored into a live supervisor.
pub const CHECKPOINT_READ_SPEC: FramedReadSpec = FramedReadSpec {
    rule: RULE_CHECKPOINT,
    subject: "checkpoint",
    reader: "Checkpoint::decode",
};

/// Table-driven framed-read rule: flags raw byte deserialization
/// outside the blessed CRC-checked reader named by `spec`. The reader
/// itself (and the decoder it calls) carries allowlist comments; any
/// other raw byte parse in scope is a finding.
pub fn check_framed_reads(
    file: &str,
    lines: &[&str],
    mask: &[bool],
    spec: &FramedReadSpec,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        for p in FRAMED_READ_PATTERNS {
            if code.contains(p) {
                let spelled: String = p.chars().filter(|c| !".()&".contains(*c)).collect();
                findings.push(Finding {
                    rule: spec.rule,
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{spelled}` deserializes bytes outside the CRC-checked {} \
                         reader; route through `{}`",
                        spec.subject, spec.reader
                    ),
                    allowed: is_allowed(lines, i, spec.rule),
                });
                break; // one finding per line is enough
            }
        }
    }
    findings
}

/// Rule `no-unchecked-wal-read` over [`WAL_READ_SPEC`].
pub fn check_wal_reads(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    check_framed_reads(file, lines, mask, &WAL_READ_SPEC)
}

/// Rule `no-unframed-checkpoint-read` over [`CHECKPOINT_READ_SPEC`].
pub fn check_checkpoint_reads(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    check_framed_reads(file, lines, mask, &CHECKPOINT_READ_SPEC)
}

/// Call spellings that block the calling thread: buffered/exact reads
/// and writes that loop until completion, fsync, synchronization
/// primitives, filesystem access, and switching a socket back to
/// blocking mode. `.join()` is matched with its empty argument list so
/// slice/iterator `join(sep)` stays out of scope.
const BLOCKING_CALL_PATTERNS: [&str; 16] = [
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".read_line(",
    ".write_all(",
    ".flush(",
    ".sync_all(",
    ".sync_data(",
    ".wait(",
    ".wait_timeout(",
    ".recv(",
    ".recv_timeout(",
    ".join()",
    "thread::sleep(",
    "set_nonblocking(false",
    "std::fs::",
];

/// Rule `no-blocking-io-in-reactor`: the event-loop crates
/// (`crates/reactor`, `crates/net`) must never block a reactor thread —
/// one stalled syscall freezes every connection parked on that shard.
/// Socket I/O must stay non-blocking (`.read(`/`.write(` with
/// `WouldBlock` handling); anything that can park the thread — exact
/// reads, flushes, fsync, condvars, joins, sleeps, filesystem calls —
/// is flagged. Deliberate blocking off the reactor threads (ingest
/// writer threads, shutdown joins, idle pacing between sweeps) carries
/// an allowlist comment stating which thread it runs on.
pub fn check_reactor_blocking(file: &str, lines: &[&str], mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] || is_comment_line(raw) {
            continue;
        }
        let code = strip_line_comment(raw);
        for p in BLOCKING_CALL_PATTERNS {
            if code.contains(p) {
                let spelled: String = p.chars().filter(|c| !".()&".contains(*c)).collect();
                findings.push(Finding {
                    rule: RULE_REACTOR,
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{spelled}` can block a reactor thread; use non-blocking \
                         I/O, or move the work to a dedicated thread and allowlist \
                         it with the thread named"
                    ),
                    allowed: is_allowed(lines, i, RULE_REACTOR),
                });
                break; // one finding per line is enough
            }
        }
    }
    findings
}

/// Extracts the variant names of `pub enum Rung` from supervisor source.
pub fn rung_variants(supervisor_src: &str) -> Vec<String> {
    let lines: Vec<&str> = supervisor_src.lines().collect();
    let mut variants = Vec::new();
    let mut in_enum = false;
    for line in &lines {
        let code = strip_line_comment(line);
        let t = code.trim();
        if t.starts_with("pub enum Rung") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if t.starts_with('}') {
                break;
            }
            let name: String = t
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push(name);
            }
        }
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(src: &str) -> Vec<&str> {
        src.lines().collect()
    }

    fn run<F>(src: &str, f: F) -> Vec<Finding>
    where
        F: Fn(&str, &[&str], &[bool]) -> Vec<Finding>,
    {
        let lines = lines_of(src);
        let mask = test_line_mask(&lines);
        f("fixture.rs", &lines, &mask)
    }

    const RAW_F64_TP: &str = include_str!("../fixtures/raw_f64_tp.rs");
    const RAW_F64_TN: &str = include_str!("../fixtures/raw_f64_tn.rs");
    const UNWRAP_TP: &str = include_str!("../fixtures/unwrap_tp.rs");
    const UNWRAP_TN: &str = include_str!("../fixtures/unwrap_tn.rs");
    const RUNG_TP: &str = include_str!("../fixtures/rung_tp.rs");
    const RUNG_TN: &str = include_str!("../fixtures/rung_tn.rs");
    const SETPOINT_TP: &str = include_str!("../fixtures/setpoint_literal_tp.rs");
    const SETPOINT_TN: &str = include_str!("../fixtures/setpoint_literal_tn.rs");
    const METRIC_TP: &str = include_str!("../fixtures/metric_name_tp.rs");
    const METRIC_TN: &str = include_str!("../fixtures/metric_name_tn.rs");
    const WAL_TP: &str = include_str!("../fixtures/wal_read_tp.rs");
    const WAL_TN: &str = include_str!("../fixtures/wal_read_tn.rs");
    const CHECKPOINT_TP: &str = include_str!("../fixtures/checkpoint_read_tp.rs");
    const CHECKPOINT_TN: &str = include_str!("../fixtures/checkpoint_read_tn.rs");
    const REACTOR_TP: &str = include_str!("../fixtures/reactor_io_tp.rs");
    const REACTOR_TN: &str = include_str!("../fixtures/reactor_io_tn.rs");
    const ZONE_INDEX_TP: &str = include_str!("../fixtures/zone_index_tp.rs");
    const ZONE_INDEX_TN: &str = include_str!("../fixtures/zone_index_tn.rs");

    fn rung_fixture(src: &str) -> Vec<Finding> {
        let variants = vec![
            "Normal".to_string(),
            "HoldLastSafe".to_string(),
            "SafeMode".to_string(),
        ];
        let lines = lines_of(src);
        let mask = test_line_mask(&lines);
        check_rung_matches("fixture.rs", &lines, &mask, &variants)
    }

    #[test]
    fn raw_f64_true_positive() {
        let findings = run(RAW_F64_TP, check_raw_f64);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(
            active.len() >= 2,
            "expected signature + field findings, got {findings:?}"
        );
        assert!(active.iter().any(|f| f.message.contains("signature")));
        assert!(active.iter().any(|f| f.message.contains("field")));
    }

    #[test]
    fn raw_f64_true_negative() {
        let findings = run(RAW_F64_TN, check_raw_f64);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        // The allowlisted bulk-telemetry line is still reported, as allowed.
        assert!(findings.iter().any(|f| f.allowed));
    }

    #[test]
    fn unwrap_true_positive() {
        let findings = run(UNWRAP_TP, check_unwrap);
        assert_eq!(findings.iter().filter(|f| !f.allowed).count(), 1);
    }

    #[test]
    fn unwrap_true_negative() {
        let findings = run(UNWRAP_TN, check_unwrap);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
    }

    #[test]
    fn rung_true_positive() {
        let findings = rung_fixture(RUNG_TP);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(
            active.iter().any(|f| f.message.contains("wildcard")),
            "wildcard arm must be flagged: {active:?}"
        );
        assert!(
            active.iter().any(|f| f.message.contains("SafeMode")),
            "missing variant must be flagged: {active:?}"
        );
    }

    #[test]
    fn rung_true_negative() {
        let findings = rung_fixture(RUNG_TN);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
    }

    #[test]
    fn setpoint_true_positive() {
        let findings = run(SETPOINT_TP, check_setpoint_literal);
        assert_eq!(findings.iter().filter(|f| !f.allowed).count(), 1);
    }

    #[test]
    fn setpoint_true_negative() {
        let findings = run(SETPOINT_TN, check_setpoint_literal);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
    }

    #[test]
    fn metric_name_true_positive() {
        let findings = run(METRIC_TP, check_metric_names);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert_eq!(active.len(), 6, "expected 6 violations, got {active:?}");
        assert!(active.iter().any(|f| f.message.contains("snake_case")));
        assert!(active.iter().any(|f| f.message.contains("_total")));
        assert!(active.iter().any(|f| f.message.contains("unit suffix")));
    }

    #[test]
    fn metric_name_true_negative() {
        let findings = run(METRIC_TN, check_metric_names);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        // The allowlisted legacy series is still reported, as allowed.
        assert!(findings.iter().any(|f| f.allowed));
    }

    #[test]
    fn wal_read_true_positive() {
        let findings = run(WAL_TP, check_wal_reads);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert_eq!(active.len(), 3, "expected 3 violations, got {active:?}");
        assert!(active.iter().any(|f| f.message.contains("from_le_bytes")));
        assert!(active.iter().any(|f| f.message.contains("read_exact")));
        assert!(active.iter().any(|f| f.message.contains("`read`")));
    }

    #[test]
    fn wal_read_true_negative() {
        let findings = run(WAL_TN, check_wal_reads);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        // The frame-decoder line is still reported, as allowed.
        assert!(findings.iter().any(|f| f.allowed));
    }

    #[test]
    fn checkpoint_read_true_positive() {
        let findings = run(CHECKPOINT_TP, check_checkpoint_reads);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert_eq!(active.len(), 3, "expected 3 violations, got {active:?}");
        assert!(active.iter().any(|f| f.message.contains("from_le_bytes")));
        assert!(active.iter().any(|f| f.message.contains("read_to_end")));
        assert!(active.iter().any(|f| f.message.contains("`read`")));
    }

    #[test]
    fn checkpoint_read_true_negative() {
        let findings = run(CHECKPOINT_TN, check_checkpoint_reads);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        // The checked-reader line is still reported, as allowed.
        assert!(findings.iter().any(|f| f.allowed));
    }

    #[test]
    fn reactor_blocking_true_positive() {
        let findings = run(REACTOR_TP, check_reactor_blocking);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert_eq!(active.len(), 10, "expected 10 violations, got {active:?}");
        for spelled in [
            "read_exact",
            "read_line",
            "write_all",
            "flush",
            "thread::sleep",
            "recv",
            "wait",
            "join",
            "set_nonblocking",
            "fs::",
        ] {
            assert!(
                active.iter().any(|f| f.message.contains(spelled)),
                "`{spelled}` must be flagged: {active:?}"
            );
        }
    }

    #[test]
    fn reactor_blocking_true_negative() {
        let findings = run(REACTOR_TN, check_reactor_blocking);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        // The writer-thread condvar wait is still reported, as allowed.
        assert!(findings.iter().any(|f| f.allowed));
    }

    #[test]
    fn zone_index_true_positive() {
        let findings = run(ZONE_INDEX_TP, check_zone_index);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(
            active.len() >= 2,
            "expected signature + field findings, got {findings:?}"
        );
        assert!(active.iter().any(|f| f.message.contains("signature")));
        assert!(active.iter().any(|f| f.message.contains("field")));
    }

    #[test]
    fn zone_index_true_negative() {
        let findings = run(ZONE_INDEX_TN, check_zone_index);
        let active: Vec<_> = findings.iter().filter(|f| !f.allowed).collect();
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        // The allowlisted wire-cursor line is still reported, as allowed.
        assert!(findings.iter().any(|f| f.allowed));
    }

    #[test]
    fn metric_name_problem_rules() {
        assert!(metric_name_problem("tesla_control_steps_total", "counter").is_none());
        assert!(metric_name_problem("tesla_decide_seconds", "histogram").is_none());
        assert!(metric_name_problem("supervisor_rung_index", "gauge").is_none());
        assert!(metric_name_problem("steps", "counter").is_some());
        assert!(metric_name_problem("Steps_total", "counter").is_some());
        assert!(metric_name_problem("decide_micros", "histogram").is_some());
        assert!(metric_name_problem("", "gauge").is_some());
    }

    #[test]
    fn allow_comment_on_preceding_line_suppresses() {
        let src = "// lint:allow(no-unwrap-in-control-path): invariant held\nlet x = y.unwrap();\n";
        let findings = run(src, check_unwrap);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].allowed);
    }

    const TEST_MASK_REGRESSION: &str = include_str!("../fixtures/test_mask_regression.rs");

    /// Regression: a comment containing `{` between the attribute and
    /// the module header must not derail the mask (the raw-line brace
    /// check used to stop there, leaving the whole module unmasked),
    /// and `#[cfg(test)]` on a `;`-terminated item must not swallow the
    /// live code that follows it.
    #[test]
    fn test_mask_regression_fixture() {
        let lines = lines_of(TEST_MASK_REGRESSION);
        let mask = test_line_mask(&lines);
        for (i, l) in lines.iter().enumerate() {
            if l.contains("MASKED") {
                assert!(mask[i], "line {} should be masked: {l}", i + 1);
            }
            if l.contains("LIVE") {
                assert!(!mask[i], "line {} should be live: {l}", i + 1);
            }
        }
        // The unwrap in live code must be caught once the mask is right.
        let findings = check_unwrap("fixture.rs", &lines, &mask);
        assert_eq!(
            findings.iter().filter(|f| !f.allowed).count(),
            1,
            "exactly the live-path unwrap must be flagged: {findings:?}"
        );
    }

    #[test]
    fn test_mask_attr_sharing_brace_line() {
        let src = "fn a() {}\n#[cfg(test)] mod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lines = lines_of(src);
        let mask = test_line_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, false]);
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lines = lines_of(src);
        let mask = test_line_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn rung_variant_extraction() {
        let src = "/// doc\npub enum Rung {\n    /// a\n    Normal,\n    HoldLastSafe,\n    SafeMode,\n}\n";
        assert_eq!(
            rung_variants(src),
            vec!["Normal", "HoldLastSafe", "SafeMode"]
        );
    }
}
