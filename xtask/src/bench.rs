//! `cargo xtask bench-diff` — the perf-regression gate.
//!
//! Compares every gate metric the two `BENCH_*.json` artifacts share
//! (as written by the tesla-bench binaries) and fails when the new
//! artifact regresses any of them by more than the budget:
//!
//! * `tesla_decide_seconds` p50 (lower is better) from the
//!   `latency_breakdown` array — the BO decision-path gate.
//! * `ingest_samples_per_second` (higher is better) from the top level —
//!   the historian ingest-throughput gate.
//! * `restart_recovery_seconds` p50 (lower is better) from the
//!   `latency_breakdown` array — the restart-chaos recovery-time gate.
//!
//! Comparing artifacts that share no gate metric is an error (exit 2),
//! but a `BENCH_perf.json` pair and a `BENCH_historian.json` pair each
//! compare on their own gate. The 10% budget is generous enough that
//! one histogram-bucket step or ingest-rate jitter does not flap the
//! gate.

/// The latency metric the gate watches (lower is better).
pub const GATE_METRIC: &str = "tesla_decide_seconds";

/// The throughput metric the gate watches (higher is better).
pub const INGEST_METRIC: &str = "ingest_samples_per_second";

/// The restart-recovery latency metric the gate watches (lower is
/// better). Written by `chaos --restarts` into `BENCH_chaos.json`.
pub const RECOVERY_METRIC: &str = "restart_recovery_seconds";

/// Maximum tolerated regression on any gate, percent.
pub const BUDGET_PERCENT: f64 = 10.0;

/// Extracts `p50_seconds` for `metric` from a `BENCH_*.json` body's
/// `latency_breakdown` array. Mirrors the hand-rolled writer in
/// `tesla-bench::profile` (the workspace has no serde).
pub fn breakdown_p50(json: &str, metric: &str) -> Option<f64> {
    let entry = json.find(&format!("\"metric\":\"{metric}\""))?;
    let rest = &json[entry..];
    let end = rest.find('}')?;
    let entry_body = &rest[..end];
    let key = "\"p50_seconds\":";
    let at = entry_body.find(key)? + key.len();
    let tail = &entry_body[at..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// Extracts a top-level `"key":<number>` field from an artifact body.
/// The tesla-bench writer emits unique keys, so a plain find suffices.
pub fn top_level_number(json: &str, key: &str) -> Option<f64> {
    let k = format!("\"{key}\":");
    let at = json.find(&k)? + k.len();
    let tail = &json[at..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// One gate metric's comparison between two artifacts.
#[derive(Debug, PartialEq)]
pub struct GateResult {
    /// Which gate metric was compared.
    pub metric: &'static str,
    /// Old artifact's value.
    pub old: f64,
    /// New artifact's value.
    pub new: f64,
    /// Regression in percent — positive means the new artifact is worse,
    /// whichever direction "worse" is for this metric.
    pub regression_pct: f64,
}

impl GateResult {
    /// True when this gate exceeds the budget.
    pub fn over_budget(&self) -> bool {
        self.regression_pct > BUDGET_PERCENT
    }
}

/// Compares every gate metric both artifacts carry. An empty result
/// means the artifacts share no gate — the caller should treat that as
/// unreadable rather than as a pass.
pub fn gate_results(old_json: &str, new_json: &str) -> Vec<GateResult> {
    let mut out = Vec::new();
    let usable = |v: f64| v.is_finite() && v > 0.0;
    if let (Some(old), Some(new)) = (
        breakdown_p50(old_json, GATE_METRIC),
        breakdown_p50(new_json, GATE_METRIC),
    ) {
        if usable(old) && new.is_finite() {
            out.push(GateResult {
                metric: GATE_METRIC,
                old,
                new,
                regression_pct: 100.0 * (new / old - 1.0),
            });
        }
    }
    if let (Some(old), Some(new)) = (
        top_level_number(old_json, INGEST_METRIC),
        top_level_number(new_json, INGEST_METRIC),
    ) {
        if usable(old) && usable(new) {
            out.push(GateResult {
                metric: INGEST_METRIC,
                old,
                new,
                regression_pct: 100.0 * (1.0 - new / old),
            });
        }
    }
    if let (Some(old), Some(new)) = (
        breakdown_p50(old_json, RECOVERY_METRIC),
        breakdown_p50(new_json, RECOVERY_METRIC),
    ) {
        if usable(old) && new.is_finite() {
            out.push(GateResult {
                metric: RECOVERY_METRIC,
                old,
                new,
                regression_pct: 100.0 * (new / old - 1.0),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(p50: f64) -> String {
        format!(
            "{{\"latency_breakdown\":[{{\"metric\":\"tesla_decide_seconds\",\
             \"label\":\"TESLA control step\",\"count\":10,\
             \"total_seconds\":1.0,\"p50_seconds\":{p50},\
             \"p90_seconds\":0.1,\"p99_seconds\":0.2}}]}}"
        )
    }

    #[test]
    fn improvement_and_small_regressions_pass() {
        let results = gate_results(&artifact(0.05), &artifact(0.006));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].regression_pct, -88.0);
        assert!(!results[0].over_budget());
        let results = gate_results(&artifact(0.05), &artifact(0.054));
        assert!((results[0].regression_pct - 8.0).abs() < 1e-9);
        assert!(!results[0].over_budget());
    }

    #[test]
    fn over_budget_regression_fails() {
        let results = gate_results(&artifact(0.006), &artifact(0.008));
        assert_eq!(results.len(), 1);
        assert!(results[0].regression_pct > BUDGET_PERCENT);
        assert!(results[0].over_budget());
    }

    #[test]
    fn missing_or_degenerate_metric_yields_no_gate() {
        assert!(gate_results("{}", &artifact(0.006)).is_empty());
        assert!(gate_results(&artifact(0.0), &artifact(0.006)).is_empty());
    }

    #[test]
    fn p50_parses_real_artifact_shape() {
        let body = artifact(0.0425);
        assert_eq!(breakdown_p50(&body, GATE_METRIC), Some(0.0425));
        assert_eq!(breakdown_p50(&body, "other"), None);
    }

    fn historian_artifact(rate: f64) -> String {
        format!(
            "{{\"series\":64,\"ingest_samples_per_second\":{rate},\
             \"compressed_bytes_per_sample\":1.82,\"recovery_seconds\":0.8,\
             \"latency_breakdown\":[]}}"
        )
    }

    #[test]
    fn ingest_gate_passes_improvements_and_small_drops() {
        let results = gate_results(&historian_artifact(2.0e6), &historian_artifact(2.5e6));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].metric, INGEST_METRIC);
        assert!(
            results[0].regression_pct < 0.0,
            "faster must read as negative"
        );
        assert!(!results[0].over_budget());

        let results = gate_results(&historian_artifact(2.0e6), &historian_artifact(1.9e6));
        assert!(!results[0].over_budget(), "-5% throughput is within budget");
    }

    #[test]
    fn ingest_gate_fails_large_throughput_drop() {
        let results = gate_results(&historian_artifact(2.0e6), &historian_artifact(1.5e6));
        assert_eq!(results.len(), 1);
        assert!((results[0].regression_pct - 25.0).abs() < 1e-9);
        assert!(results[0].over_budget(), "-25% throughput must fail");
    }

    #[test]
    fn disjoint_artifacts_share_no_gate() {
        assert!(gate_results(&artifact(0.01), &historian_artifact(2.0e6)).is_empty());
        assert!(gate_results("{}", "{}").is_empty());
    }

    #[test]
    fn latency_gate_still_flows_through_gate_results() {
        let results = gate_results(&artifact(0.006), &artifact(0.008));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].metric, GATE_METRIC);
        assert!(results[0].over_budget());
    }

    fn chaos_artifact(recovery_p50: f64) -> String {
        format!(
            "{{\"restart_failures\":0,\"latency_breakdown\":[\
             {{\"metric\":\"restart_recovery_seconds\",\"label\":\"restart recovery\",\
             \"count\":24,\"total_seconds\":0.8,\"p50_seconds\":{recovery_p50},\
             \"p90_seconds\":0.2,\"p99_seconds\":0.3}}]}}"
        )
    }

    #[test]
    fn recovery_gate_passes_and_fails_on_p50() {
        let results = gate_results(&chaos_artifact(0.03), &chaos_artifact(0.031));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].metric, RECOVERY_METRIC);
        assert!(!results[0].over_budget(), "+3.3% recovery is within budget");

        let results = gate_results(&chaos_artifact(0.03), &chaos_artifact(0.05));
        assert!(results[0].over_budget(), "+67% recovery must fail");
    }

    #[test]
    fn recovery_gate_skipped_when_either_side_lacks_it() {
        assert!(gate_results(&artifact(0.01), &chaos_artifact(0.03)).is_empty());
        assert!(gate_results(&chaos_artifact(0.03), "{}").is_empty());
    }

    #[test]
    fn top_level_number_parses_and_rejects() {
        let body = historian_artifact(4266000.5);
        assert_eq!(top_level_number(&body, INGEST_METRIC), Some(4266000.5));
        assert_eq!(top_level_number(&body, "missing_key"), None);
        assert_eq!(top_level_number("{\"k\":\"str\"}", "k"), None);
    }
}
