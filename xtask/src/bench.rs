//! `cargo xtask bench-diff` — the perf-regression gate.
//!
//! Compares every gate metric the two `BENCH_*.json` artifacts share
//! (as written by the tesla-bench binaries) and fails when the new
//! artifact regresses any of them by more than the budget:
//!
//! * `tesla_decide_seconds` p50 (lower is better) from the
//!   `latency_breakdown` array — the BO decision-path gate.
//! * `ingest_samples_per_second` (higher is better) from the top level —
//!   the historian ingest-throughput gate.
//! * `restart_recovery_seconds` p50 (lower is better) from the
//!   `latency_breakdown` array — the restart-chaos recovery-time gate.
//! * `net_ingest_samples_per_second` (higher is better) from the top
//!   level — the end-to-end network ingest gate (`BENCH_net.json`).
//! * `tesla_net_query_seconds` p50 (lower is better) from the
//!   `latency_breakdown` array — the TLP query round-trip gate.
//! * `fleet_zone_minutes_per_second` (higher is better) from the top
//!   level — the fleet zone-minute throughput gate (`BENCH_fleet.json`).
//! * `tesla_fleet_zone_decide_seconds` p50 (lower is better) from the
//!   `latency_breakdown` array — the per-zone decision-path gate.
//!
//! Comparing artifacts that share no gate metric is an error (exit 2),
//! but a `BENCH_perf.json` pair and a `BENCH_historian.json` pair each
//! compare on their own gate. The 10% budget is generous enough that
//! one histogram-bucket step or ingest-rate jitter does not flap the
//! gate.

/// The latency metric the gate watches (lower is better).
pub const GATE_METRIC: &str = "tesla_decide_seconds";

/// The throughput metric the gate watches (higher is better).
pub const INGEST_METRIC: &str = "ingest_samples_per_second";

/// The restart-recovery latency metric the gate watches (lower is
/// better). Written by `chaos --restarts` into `BENCH_chaos.json`.
pub const RECOVERY_METRIC: &str = "restart_recovery_seconds";

/// The network ingest-throughput metric the gate watches (higher is
/// better). Written by the `net` bench into `BENCH_net.json`.
pub const NET_INGEST_METRIC: &str = "net_ingest_samples_per_second";

/// The TLP query round-trip latency metric the gate watches (lower is
/// better). Loopback RTTs at the ~100µs scale jitter across the
/// log-linear histogram grid from run to run, so this gate's budget is
/// one bucket step (plus slack) rather than the flat 10% — see
/// [`one_bucket_up`].
pub const NET_QUERY_METRIC: &str = "tesla_net_query_seconds";

/// The fleet zone-minute throughput metric the gate watches (higher is
/// better). Written by the `fleet` bench into `BENCH_fleet.json` from
/// the 8-zone capped tier — the tier the full run and the CI `--smoke`
/// run share, so the comparison is like for like.
pub const FLEET_THROUGHPUT_METRIC: &str = "fleet_zone_minutes_per_second";

/// The per-zone decision-path latency metric the gate watches (lower
/// is better). Like [`NET_QUERY_METRIC`], the ~100µs-scale p50 is
/// quantized onto the log-linear histogram grid, so its budget is one
/// bucket step (plus slack) — see [`one_bucket_up`].
pub const FLEET_DECIDE_METRIC: &str = "tesla_fleet_zone_decide_seconds";

/// Maximum tolerated regression on any gate, percent.
pub const BUDGET_PERCENT: f64 = 10.0;

/// Extracts `p50_seconds` for `metric` from a `BENCH_*.json` body's
/// `latency_breakdown` array. Mirrors the hand-rolled writer in
/// `tesla-bench::profile` (the workspace has no serde).
pub fn breakdown_p50(json: &str, metric: &str) -> Option<f64> {
    let entry = json.find(&format!("\"metric\":\"{metric}\""))?;
    let rest = &json[entry..];
    let end = rest.find('}')?;
    let entry_body = &rest[..end];
    let key = "\"p50_seconds\":";
    let at = entry_body.find(key)? + key.len();
    let tail = &entry_body[at..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// Extracts a top-level `"key":<number>` field from an artifact body.
/// The tesla-bench writer emits unique keys, so a plain find suffices.
pub fn top_level_number(json: &str, key: &str) -> Option<f64> {
    let k = format!("\"{key}\":");
    let at = json.find(&k)? + k.len();
    let tail = &json[at..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// One gate metric's comparison between two artifacts.
#[derive(Debug, PartialEq)]
pub struct GateResult {
    /// Which gate metric was compared.
    pub metric: &'static str,
    /// Old artifact's value.
    pub old: f64,
    /// New artifact's value.
    pub new: f64,
    /// Regression in percent — positive means the new artifact is worse,
    /// whichever direction "worse" is for this metric.
    pub regression_pct: f64,
    /// Maximum tolerated regression for this metric, percent.
    pub budget_pct: f64,
}

impl GateResult {
    /// True when this gate exceeds its budget.
    pub fn over_budget(&self) -> bool {
        self.regression_pct > self.budget_pct
    }
}

/// The histogram bucket bound one step above `v` on the log-linear
/// grid tesla-obs quantizes latencies onto (9 steps per decade:
/// 1, 2, …, 9, 10). Breakdown p50s in `BENCH_*.json` are exactly these
/// bounds, so "one step up" is the smallest possible run-to-run
/// movement of a quantized p50.
pub fn one_bucket_up(v: f64) -> f64 {
    if !(v.is_finite() && v > 0.0) {
        return v;
    }
    let exp = v.log10().floor();
    let scale = 10f64.powf(exp);
    // Round to the nearest grid mantissa to absorb float noise.
    let mantissa = (v / scale).round().clamp(1.0, 10.0);
    if mantissa >= 9.0 {
        scale * 10.0
    } else {
        scale * (mantissa + 1.0)
    }
}

/// Compares every gate metric both artifacts carry. An empty result
/// means the artifacts share no gate — the caller should treat that as
/// unreadable rather than as a pass.
pub fn gate_results(old_json: &str, new_json: &str) -> Vec<GateResult> {
    let mut out = Vec::new();
    let usable = |v: f64| v.is_finite() && v > 0.0;
    // Latency gates: breakdown p50, lower is better.
    for metric in [
        GATE_METRIC,
        RECOVERY_METRIC,
        NET_QUERY_METRIC,
        FLEET_DECIDE_METRIC,
    ] {
        if let (Some(old), Some(new)) = (
            breakdown_p50(old_json, metric),
            breakdown_p50(new_json, metric),
        ) {
            if usable(old) && new.is_finite() {
                // The query-RTT and fleet-decide gates tolerate one
                // histogram bucket step (plus 5% slack): smoke runs on
                // loaded runners wobble a quantized ~100µs p50 by one
                // bucket, which is noise, while a real regression moves
                // it two or more.
                let budget_pct = if metric == NET_QUERY_METRIC || metric == FLEET_DECIDE_METRIC {
                    (100.0 * (one_bucket_up(old) * 1.05 / old - 1.0)).max(BUDGET_PERCENT)
                } else {
                    BUDGET_PERCENT
                };
                out.push(GateResult {
                    metric,
                    old,
                    new,
                    regression_pct: 100.0 * (new / old - 1.0),
                    budget_pct,
                });
            }
        }
    }
    // Throughput gates: top-level rate, higher is better.
    for metric in [INGEST_METRIC, NET_INGEST_METRIC, FLEET_THROUGHPUT_METRIC] {
        if let (Some(old), Some(new)) = (
            top_level_number(old_json, metric),
            top_level_number(new_json, metric),
        ) {
            if usable(old) && usable(new) {
                out.push(GateResult {
                    metric,
                    old,
                    new,
                    regression_pct: 100.0 * (1.0 - new / old),
                    budget_pct: BUDGET_PERCENT,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(p50: f64) -> String {
        format!(
            "{{\"latency_breakdown\":[{{\"metric\":\"tesla_decide_seconds\",\
             \"label\":\"TESLA control step\",\"count\":10,\
             \"total_seconds\":1.0,\"p50_seconds\":{p50},\
             \"p90_seconds\":0.1,\"p99_seconds\":0.2}}]}}"
        )
    }

    #[test]
    fn improvement_and_small_regressions_pass() {
        let results = gate_results(&artifact(0.05), &artifact(0.006));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].regression_pct, -88.0);
        assert!(!results[0].over_budget());
        let results = gate_results(&artifact(0.05), &artifact(0.054));
        assert!((results[0].regression_pct - 8.0).abs() < 1e-9);
        assert!(!results[0].over_budget());
    }

    #[test]
    fn over_budget_regression_fails() {
        let results = gate_results(&artifact(0.006), &artifact(0.008));
        assert_eq!(results.len(), 1);
        assert!(results[0].regression_pct > BUDGET_PERCENT);
        assert!(results[0].over_budget());
    }

    #[test]
    fn missing_or_degenerate_metric_yields_no_gate() {
        assert!(gate_results("{}", &artifact(0.006)).is_empty());
        assert!(gate_results(&artifact(0.0), &artifact(0.006)).is_empty());
    }

    #[test]
    fn p50_parses_real_artifact_shape() {
        let body = artifact(0.0425);
        assert_eq!(breakdown_p50(&body, GATE_METRIC), Some(0.0425));
        assert_eq!(breakdown_p50(&body, "other"), None);
    }

    fn historian_artifact(rate: f64) -> String {
        format!(
            "{{\"series\":64,\"ingest_samples_per_second\":{rate},\
             \"compressed_bytes_per_sample\":1.82,\"recovery_seconds\":0.8,\
             \"latency_breakdown\":[]}}"
        )
    }

    #[test]
    fn ingest_gate_passes_improvements_and_small_drops() {
        let results = gate_results(&historian_artifact(2.0e6), &historian_artifact(2.5e6));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].metric, INGEST_METRIC);
        assert!(
            results[0].regression_pct < 0.0,
            "faster must read as negative"
        );
        assert!(!results[0].over_budget());

        let results = gate_results(&historian_artifact(2.0e6), &historian_artifact(1.9e6));
        assert!(!results[0].over_budget(), "-5% throughput is within budget");
    }

    #[test]
    fn ingest_gate_fails_large_throughput_drop() {
        let results = gate_results(&historian_artifact(2.0e6), &historian_artifact(1.5e6));
        assert_eq!(results.len(), 1);
        assert!((results[0].regression_pct - 25.0).abs() < 1e-9);
        assert!(results[0].over_budget(), "-25% throughput must fail");
    }

    #[test]
    fn disjoint_artifacts_share_no_gate() {
        assert!(gate_results(&artifact(0.01), &historian_artifact(2.0e6)).is_empty());
        assert!(gate_results("{}", "{}").is_empty());
    }

    #[test]
    fn latency_gate_still_flows_through_gate_results() {
        let results = gate_results(&artifact(0.006), &artifact(0.008));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].metric, GATE_METRIC);
        assert!(results[0].over_budget());
    }

    fn chaos_artifact(recovery_p50: f64) -> String {
        format!(
            "{{\"restart_failures\":0,\"latency_breakdown\":[\
             {{\"metric\":\"restart_recovery_seconds\",\"label\":\"restart recovery\",\
             \"count\":24,\"total_seconds\":0.8,\"p50_seconds\":{recovery_p50},\
             \"p90_seconds\":0.2,\"p99_seconds\":0.3}}]}}"
        )
    }

    #[test]
    fn recovery_gate_passes_and_fails_on_p50() {
        let results = gate_results(&chaos_artifact(0.03), &chaos_artifact(0.031));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].metric, RECOVERY_METRIC);
        assert!(!results[0].over_budget(), "+3.3% recovery is within budget");

        let results = gate_results(&chaos_artifact(0.03), &chaos_artifact(0.05));
        assert!(results[0].over_budget(), "+67% recovery must fail");
    }

    #[test]
    fn recovery_gate_skipped_when_either_side_lacks_it() {
        assert!(gate_results(&artifact(0.01), &chaos_artifact(0.03)).is_empty());
        assert!(gate_results(&chaos_artifact(0.03), "{}").is_empty());
    }

    fn net_artifact(rate: f64, query_p50: f64) -> String {
        format!(
            "{{\"connections\":10000,\"net_ingest_samples_per_second\":{rate},\
             \"net_query_p50_seconds\":{query_p50},\"latency_breakdown\":[\
             {{\"metric\":\"tesla_net_query_seconds\",\"label\":\"TLP query round-trip\",\
             \"count\":2000,\"total_seconds\":0.4,\"p50_seconds\":{query_p50},\
             \"p90_seconds\":0.0005,\"p99_seconds\":0.003}}]}}"
        )
    }

    #[test]
    fn net_gates_compare_ingest_and_query_p50() {
        let results = gate_results(&net_artifact(1.1e6, 2e-4), &net_artifact(1.5e6, 2e-4));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].metric, NET_QUERY_METRIC);
        assert_eq!(results[1].metric, NET_INGEST_METRIC);
        assert!(results.iter().all(|r| !r.over_budget()));

        let results = gate_results(&net_artifact(1.1e6, 2e-4), &net_artifact(0.8e6, 2e-4));
        let ingest = results.iter().find(|r| r.metric == NET_INGEST_METRIC);
        assert!(
            ingest.is_some_and(GateResult::over_budget),
            "-27% ingest must fail"
        );

        let results = gate_results(&net_artifact(1.1e6, 2e-4), &net_artifact(1.1e6, 5e-4));
        let query = results.iter().find(|r| r.metric == NET_QUERY_METRIC);
        assert!(
            query.is_some_and(GateResult::over_budget),
            "a 2e-4 -> 5e-4 (two-bucket) query p50 jump must fail"
        );
    }

    #[test]
    fn net_query_gate_tolerates_one_bucket_step() {
        // 200µs -> 300µs is one step on the log-linear grid: noise on a
        // loaded runner, not a regression.
        let results = gate_results(&net_artifact(1.1e6, 2e-4), &net_artifact(1.1e6, 3e-4));
        let query = results
            .iter()
            .find(|r| r.metric == NET_QUERY_METRIC)
            .expect("query gate present");
        assert!((query.regression_pct - 50.0).abs() < 1e-9);
        assert!(!query.over_budget(), "one bucket step must pass");
    }

    fn fleet_artifact(rate: f64, decide_p50: f64) -> String {
        format!(
            "{{\"workers\":1,\"zones_max\":1024,\
             \"fleet_zone_minutes_per_second\":{rate},\"latency_breakdown\":[\
             {{\"metric\":\"tesla_fleet_zone_decide_seconds\",\"label\":\"fleet zone decide\",\
             \"count\":480,\"total_seconds\":0.05,\"p50_seconds\":{decide_p50},\
             \"p90_seconds\":0.0002,\"p99_seconds\":0.0004}}]}}"
        )
    }

    #[test]
    fn fleet_gates_compare_throughput_and_decide_p50() {
        let results = gate_results(
            &fleet_artifact(14000.0, 1e-4),
            &fleet_artifact(15000.0, 1e-4),
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].metric, FLEET_DECIDE_METRIC);
        assert_eq!(results[1].metric, FLEET_THROUGHPUT_METRIC);
        assert!(results.iter().all(|r| !r.over_budget()));

        let results = gate_results(
            &fleet_artifact(14000.0, 1e-4),
            &fleet_artifact(10000.0, 1e-4),
        );
        let rate = results.iter().find(|r| r.metric == FLEET_THROUGHPUT_METRIC);
        assert!(
            rate.is_some_and(GateResult::over_budget),
            "-29% zone-minute throughput must fail"
        );

        let results = gate_results(
            &fleet_artifact(14000.0, 1e-4),
            &fleet_artifact(14000.0, 3e-4),
        );
        let decide = results.iter().find(|r| r.metric == FLEET_DECIDE_METRIC);
        assert!(
            decide.is_some_and(GateResult::over_budget),
            "a 1e-4 -> 3e-4 (two-bucket) decide p50 jump must fail"
        );
    }

    #[test]
    fn fleet_decide_gate_tolerates_one_bucket_step() {
        // 100µs -> 200µs is one step on the log-linear grid: noise on a
        // loaded runner, not a regression.
        let results = gate_results(
            &fleet_artifact(14000.0, 1e-4),
            &fleet_artifact(14000.0, 2e-4),
        );
        let decide = results
            .iter()
            .find(|r| r.metric == FLEET_DECIDE_METRIC)
            .expect("decide gate present");
        assert!(!decide.over_budget(), "one bucket step must pass");
    }

    #[test]
    fn fleet_gates_skipped_when_either_side_lacks_them() {
        assert!(gate_results(&fleet_artifact(14000.0, 1e-4), &artifact(0.01)).is_empty());
        assert!(gate_results("{}", &fleet_artifact(14000.0, 1e-4)).is_empty());
    }

    #[test]
    fn one_bucket_up_walks_the_grid() {
        assert!((one_bucket_up(2e-4) - 3e-4).abs() < 1e-12);
        assert!((one_bucket_up(9e-4) - 1e-3).abs() < 1e-12);
        assert!((one_bucket_up(1e-3) - 2e-3).abs() < 1e-12);
        assert!((one_bucket_up(5e-2) - 6e-2).abs() < 1e-12);
        assert_eq!(one_bucket_up(0.0), 0.0);
    }

    #[test]
    fn net_gates_skipped_when_either_side_lacks_them() {
        assert!(gate_results(&net_artifact(1.1e6, 2e-4), &artifact(0.01)).is_empty());
        assert!(gate_results("{}", &net_artifact(1.1e6, 2e-4)).is_empty());
    }

    #[test]
    fn top_level_number_parses_and_rejects() {
        let body = historian_artifact(4266000.5);
        assert_eq!(top_level_number(&body, INGEST_METRIC), Some(4266000.5));
        assert_eq!(top_level_number(&body, "missing_key"), None);
        assert_eq!(top_level_number("{\"k\":\"str\"}", "k"), None);
    }
}
