//! `cargo xtask bench-diff` — the perf-regression gate.
//!
//! Compares the `tesla_decide_seconds` p50 between two `BENCH_*.json`
//! artifacts (as written by the tesla-bench binaries) and fails when
//! the new artifact regresses by more than the budget. Both sides are
//! bucket-resolution histogram quantiles, so the comparison is
//! like-for-like; the budget is generous enough (10%) that one bucket
//! step at the current latency scale does not flap the gate.

/// The latency metric the gate watches.
pub const GATE_METRIC: &str = "tesla_decide_seconds";

/// Maximum tolerated p50 regression, percent.
pub const BUDGET_PERCENT: f64 = 10.0;

/// Extracts `p50_seconds` for `metric` from a `BENCH_*.json` body's
/// `latency_breakdown` array. Mirrors the hand-rolled writer in
/// `tesla-bench::profile` (the workspace has no serde).
pub fn breakdown_p50(json: &str, metric: &str) -> Option<f64> {
    let entry = json.find(&format!("\"metric\":\"{metric}\""))?;
    let rest = &json[entry..];
    let end = rest.find('}')?;
    let entry_body = &rest[..end];
    let key = "\"p50_seconds\":";
    let at = entry_body.find(key)? + key.len();
    let tail = &entry_body[at..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// Outcome of comparing an old artifact against a new one.
#[derive(Debug, PartialEq)]
pub enum DiffVerdict {
    /// Within budget; holds the regression in percent (negative =
    /// improvement).
    Ok(f64),
    /// Over budget; holds the regression in percent.
    Regression(f64),
    /// A side is missing the metric or holds a non-positive p50.
    Unreadable(&'static str),
}

/// Compares the gate metric's p50 between two artifact bodies.
pub fn diff(old_json: &str, new_json: &str) -> DiffVerdict {
    let Some(old_p50) = breakdown_p50(old_json, GATE_METRIC) else {
        return DiffVerdict::Unreadable("old artifact lacks the gate metric");
    };
    let Some(new_p50) = breakdown_p50(new_json, GATE_METRIC) else {
        return DiffVerdict::Unreadable("new artifact lacks the gate metric");
    };
    let old_positive = old_p50.is_finite() && old_p50 > 0.0;
    if !old_positive || !new_p50.is_finite() {
        return DiffVerdict::Unreadable("non-positive or non-finite p50");
    }
    let regression_pct = 100.0 * (new_p50 / old_p50 - 1.0);
    if regression_pct > BUDGET_PERCENT {
        DiffVerdict::Regression(regression_pct)
    } else {
        DiffVerdict::Ok(regression_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(p50: f64) -> String {
        format!(
            "{{\"latency_breakdown\":[{{\"metric\":\"tesla_decide_seconds\",\
             \"label\":\"TESLA control step\",\"count\":10,\
             \"total_seconds\":1.0,\"p50_seconds\":{p50},\
             \"p90_seconds\":0.1,\"p99_seconds\":0.2}}]}}"
        )
    }

    #[test]
    fn improvement_and_small_regressions_pass() {
        assert_eq!(
            diff(&artifact(0.05), &artifact(0.006)),
            DiffVerdict::Ok(-88.0)
        );
        match diff(&artifact(0.05), &artifact(0.054)) {
            DiffVerdict::Ok(pct) => assert!((pct - 8.0).abs() < 1e-9),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_regression_fails() {
        match diff(&artifact(0.006), &artifact(0.008)) {
            DiffVerdict::Regression(pct) => assert!(pct > BUDGET_PERCENT),
            other => panic!("expected Regression, got {other:?}"),
        }
    }

    #[test]
    fn missing_metric_is_unreadable() {
        assert!(matches!(
            diff("{}", &artifact(0.006)),
            DiffVerdict::Unreadable(_)
        ));
        assert!(matches!(
            diff(&artifact(0.0), &artifact(0.006)),
            DiffVerdict::Unreadable(_)
        ));
    }

    #[test]
    fn p50_parses_real_artifact_shape() {
        let body = artifact(0.0425);
        assert_eq!(breakdown_p50(&body, GATE_METRIC), Some(0.0425));
        assert_eq!(breakdown_p50(&body, "other"), None);
    }
}
